#include "storage/partition_cache.h"

#include <algorithm>

namespace tardis {

PartitionCache::PartitionCache(uint64_t budget_bytes, size_t num_shards)
    : budget_bytes_(budget_bytes) {
  const size_t shards = std::max<size_t>(1, num_shards);
  shard_budget_ = budget_bytes / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

uint64_t PartitionCache::ChargedBytes(const std::vector<Record>& records) {
  // Decoded footprint: per-record header (rid + vector bookkeeping) plus the
  // float payload. An exact accounting of allocator overhead is not needed —
  // the budget only has to scale with the data it protects against.
  uint64_t bytes = sizeof(std::vector<Record>);
  for (const Record& rec : records) {
    bytes += sizeof(Record) + rec.values.size() * sizeof(float);
  }
  return bytes;
}

Result<PartitionCache::Value> PartitionCache::GetOrLoad(PartitionId pid,
                                                        const Loader& loader) {
  Shard& shard = ShardFor(pid);
  std::unique_lock<std::mutex> lock(shard.mu);

  auto hit = shard.entries.find(pid);
  if (hit != shard.entries.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, hit->second.lru_it);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return hit->second.value;
  }

  auto flight = shard.inflight.find(pid);
  if (flight != shard.inflight.end()) {
    // Another thread is already reading this partition: piggyback on it.
    std::shared_ptr<InFlight> fl = flight->second;
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    fl->cv.wait(lock, [&fl] { return fl->done; });
    if (!fl->error.ok()) return fl->error;
    return fl->value;
  }

  auto fl = std::make_shared<InFlight>();
  shard.inflight.emplace(pid, fl);
  misses_.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();

  Result<std::vector<Record>> loaded = loader();

  lock.lock();
  shard.inflight.erase(pid);
  if (!loaded.ok()) {
    fl->error = loaded.status();
    fl->done = true;
    fl->cv.notify_all();
    return fl->error;
  }
  Value value =
      std::make_shared<const std::vector<Record>>(std::move(*loaded));
  const uint64_t bytes = ChargedBytes(*value);
  loaded_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  fl->value = value;
  fl->done = true;
  fl->cv.notify_all();
  InsertAndEvict(shard, pid, value, bytes);
  return value;
}

void PartitionCache::InsertAndEvict(Shard& shard, PartitionId pid, Value value,
                                    uint64_t bytes) {
  shard.lru.push_front(pid);
  Entry entry;
  entry.value = std::move(value);
  entry.bytes = bytes;
  entry.lru_it = shard.lru.begin();
  shard.entries[pid] = std::move(entry);
  shard.bytes += bytes;
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    // Least-recently-used *unpinned* entry; if everything resident is
    // pinned, the shard stays over budget until a pin drops.
    auto victim_it = shard.lru.end();
    for (auto rit = shard.lru.rbegin(); rit != shard.lru.rend(); ++rit) {
      if (shard.pins.find(*rit) == shard.pins.end()) {
        victim_it = std::prev(rit.base());
        break;
      }
    }
    if (victim_it == shard.lru.end()) break;
    const PartitionId victim = *victim_it;
    shard.lru.erase(victim_it);
    auto it = shard.entries.find(victim);
    shard.bytes -= it->second.bytes;
    shard.entries.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PartitionCache::Pin(PartitionId pid) {
  Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.pins[pid];
}

void PartitionCache::Unpin(PartitionId pid) {
  Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.pins.find(pid);
  if (it == shard.pins.end()) return;
  if (--it->second == 0) shard.pins.erase(it);
}

void PartitionCache::Invalidate(PartitionId pid) {
  Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(pid);
  if (it == shard.entries.end()) return;
  shard.bytes -= it->second.bytes;
  shard.lru.erase(it->second.lru_it);
  shard.entries.erase(it);
}

void PartitionCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    evictions_.fetch_add(shard->entries.size(), std::memory_order_relaxed);
    shard->entries.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
}

PartitionCacheStats PartitionCache::Snapshot() const {
  PartitionCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.loaded_bytes = loaded_bytes_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.resident_bytes += shard->bytes;
    stats.resident_partitions += shard->entries.size();
    stats.pinned_partitions += shard->pins.size();
  }
  return stats;
}

}  // namespace tardis

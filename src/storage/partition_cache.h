// PartitionCache: a sharded, thread-safe, byte-budgeted LRU cache of decoded
// partitions — the query-side answer to the paper's dominant "load the
// partition" cost (§V, Figs. 14-16). Repeated and concurrent queries for the
// same partition are served from memory instead of re-reading the partition
// file; concurrent misses for one partition coalesce into a single disk read
// (single-flight loading).
//
// Values are immutable shared snapshots (`std::shared_ptr<const
// PartitionArena>`), so an entry evicted while a query still ranks its
// records stays alive until that query drops its reference. The budget is
// split across shards (ceil-divide, so a tiny budget never rounds a shard
// down to zero); each shard evicts least-recently-used entries until it is
// back under its slice — but always retains its most-recently-inserted
// entry — which bounds resident bytes at roughly `budget + one partition
// per shard` at any instant.
//
// Hit/miss/eviction counters are telemetry::Counter instances registered in
// the global registry under "tardis.cache.*" (the registry exports the most
// recently constructed cache; each instance's Snapshot() stays isolated).

#ifndef TARDIS_STORAGE_PARTITION_CACHE_H_
#define TARDIS_STORAGE_PARTITION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/telemetry.h"
#include "common/thread_annotations.h"
#include "storage/partition_arena.h"
#include "storage/record.h"

namespace tardis {

// Monotonic cache counters plus a point-in-time residency snapshot.
struct PartitionCacheStats {
  uint64_t hits = 0;          // lookups served from a resident entry
  uint64_t misses = 0;        // lookups that ran the loader (disk reads)
  uint64_t coalesced = 0;     // lookups that waited on another thread's load
  uint64_t evictions = 0;     // entries dropped to respect the byte budget
  uint64_t loaded_bytes = 0;  // decoded bytes brought in by cache loads
  uint64_t resident_bytes = 0;       // currently cached (approx decoded size)
  uint64_t resident_partitions = 0;  // currently cached entry count
  uint64_t pinned_partitions = 0;    // pids with a positive pin count

  uint64_t Lookups() const { return hits + misses + coalesced; }
};

class PartitionCache {
 public:
  using Value = std::shared_ptr<const PartitionArena>;
  using Loader = std::function<Result<PartitionArena>()>;
  // Cache key: a partition id qualified by its content generation (the epoch
  // generation of its newest delta, or 0 for pristine build output — see
  // storage/manifest.h). Appending to a partition publishes new content under
  // a new key instead of invalidating the old one, so queries pinned to an
  // older epoch keep hitting their snapshot's entries while new-epoch queries
  // load fresh ones. Plain PartitionId arguments widen implicitly to the
  // generation-0 key, which keeps single-epoch callers (DPiSAX, tests)
  // unchanged.
  using Key = uint64_t;

  // Packs (content generation, pid). part_%06u keeps pids < 1e6 < 2^24, so
  // 40 generation bits remain — far past any append count.
  static Key MakeKey(PartitionId pid, uint64_t content_gen) {
    return (content_gen << 24) | static_cast<Key>(pid);
  }

  // `budget_bytes` caps the resident decoded bytes (see ChargedBytes); with a
  // budget of 0 every load is evicted as soon as it is inserted, so the cache
  // degenerates to pure single-flight deduplication.
  explicit PartitionCache(uint64_t budget_bytes, size_t num_shards = 8);

  PartitionCache(const PartitionCache&) = delete;
  PartitionCache& operator=(const PartitionCache&) = delete;

  // Returns the cached snapshot of `key`, running `loader` on a miss. When
  // several threads miss on the same key concurrently, exactly one runs the
  // loader; the rest block until it publishes (or propagate its error).
  // A failed load caches nothing — the next lookup retries.
  Result<Value> GetOrLoad(Key key, const Loader& loader);

  // Pins `key`: while its pin count is positive the entry is exempt from
  // budget eviction and from Clear() (resident bytes may transiently exceed
  // the budget by the pinned working set). Invalidate still drops pinned
  // entries — it signals staleness, which pins do not protect against.
  // Pinning a key that is not resident is allowed and takes effect when the
  // entry is next inserted. Used by the batched QueryEngine to keep a
  // batch's partitions resident across its scheduling phases.
  void Pin(Key key);
  // Decrements the pin count; a no-op when the key is not pinned.
  void Unpin(Key key);

  // Drops `key` from the cache (after a partition rewrite destroys the
  // content the key names — a rebuild, not an epoch append, which publishes
  // under a fresh key and leaves the old one valid). Only loads started
  // after Invalidate returns are guaranteed fresh.
  void Invalidate(Key key);

  // Moves `key` to the cold (next-victim) end of its shard's LRU — an
  // eviction-priority hint for entries of a superseded generation: still
  // valid for in-flight old-epoch readers, first to go under budget
  // pressure. A no-op for absent or pinned entries.
  void Deprioritize(Key key);

  // True when `key` is currently resident. A point-in-time answer (the entry
  // can be evicted the instant the lock drops) — callers use it as a
  // scheduling hint, never as a correctness guarantee.
  bool IsResident(Key key) const;

  // Drops every *unpinned* resident entry (counted as evictions). Pinned
  // entries stay resident and charged, mirroring the exemption that budget
  // eviction honors.
  void Clear();

  PartitionCacheStats Snapshot() const;

  uint64_t budget_bytes() const { return budget_bytes_; }
  size_t num_shards() const { return shards_.size(); }

  // Exact decoded in-memory footprint charged against the budget: the arena
  // object plus its single backing allocation. (The AoS predecessor estimated
  // this from vector payloads and undercounted per-record heap overhead.)
  static uint64_t ChargedBytes(const PartitionArena& arena);

 private:
  struct Entry {
    Value value;
    uint64_t bytes = 0;
    std::list<Key>::iterator lru_it;
  };

  // Single-flight rendezvous for one in-progress load. done/error/value are
  // protected by the *owning shard's* mu — a per-instance relationship the
  // analysis cannot name from here, so the fields stay unannotated; every
  // access in partition_cache.cc happens with that shard lock held.
  struct InFlight {
    CondVar cv;
    bool done = false;
    Status error;
    Value value;
  };

  struct Shard {
    Mutex mu;
    std::unordered_map<Key, Entry> entries TARDIS_GUARDED_BY(mu);
    std::list<Key> lru
        TARDIS_GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<Key, std::shared_ptr<InFlight>> inflight
        TARDIS_GUARDED_BY(mu);
    // Pin counts (present => positive). Kept separate from `entries` so a
    // key can be pinned before it becomes resident.
    std::unordered_map<Key, uint32_t> pins TARDIS_GUARDED_BY(mu);
    uint64_t bytes TARDIS_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(Key key) { return *shards_[key % shards_.size()]; }

  // Inserts a freshly loaded value and evicts LRU entries until the shard is
  // back under its budget slice.
  void InsertAndEvict(Shard& shard, Key key, Value value,
                      uint64_t bytes) TARDIS_REQUIRES(shard.mu);

  uint64_t budget_bytes_;
  uint64_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Shared with the global telemetry registry ("tardis.cache.*"): the
  // registry holds a second reference, so a replaced instance's counters
  // stay valid for anything that cached them.
  std::shared_ptr<telemetry::Counter> hits_;
  std::shared_ptr<telemetry::Counter> misses_;
  std::shared_ptr<telemetry::Counter> coalesced_;
  std::shared_ptr<telemetry::Counter> evictions_;
  std::shared_ptr<telemetry::Counter> loaded_bytes_;
  std::shared_ptr<telemetry::Gauge> resident_bytes_;
  std::shared_ptr<telemetry::Gauge> resident_partitions_;
  std::shared_ptr<telemetry::Gauge> pinned_partitions_;
};

// RAII pin: pins on construction, unpins on destruction. A null cache makes
// it a no-op, so callers need not special-case a disabled cache.
class ScopedPin {
 public:
  ScopedPin() = default;
  ScopedPin(PartitionCache* cache, PartitionCache::Key key)
      : cache_(cache), key_(key) {
    if (cache_ != nullptr) cache_->Pin(key_);
  }
  ScopedPin(ScopedPin&& other) noexcept
      : cache_(other.cache_), key_(other.key_) {
    other.cache_ = nullptr;
  }
  ScopedPin& operator=(ScopedPin&& other) noexcept {
    if (this != &other) {
      Reset();
      cache_ = other.cache_;
      key_ = other.key_;
      other.cache_ = nullptr;
    }
    return *this;
  }
  ScopedPin(const ScopedPin&) = delete;
  ScopedPin& operator=(const ScopedPin&) = delete;
  ~ScopedPin() { Reset(); }

 private:
  void Reset() {
    if (cache_ != nullptr) cache_->Unpin(key_);
    cache_ = nullptr;
  }

  PartitionCache* cache_ = nullptr;
  PartitionCache::Key key_ = 0;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_PARTITION_CACHE_H_

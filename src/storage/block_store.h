// BlockStore: the raw dataset laid out as fixed-capacity binary block files
// on disk — our stand-in for an HDFS directory of 128 MB blocks.
//
// The paper's pipeline reads the dataset block-parallel (one Spark task per
// block) and samples it *at block level* for Tardis-G construction
// (§IV-B "Data Preprocessing"). Both behaviours are preserved here: blocks
// are the unit of parallel map and of sampling.

#ifndef TARDIS_STORAGE_BLOCK_STORE_H_
#define TARDIS_STORAGE_BLOCK_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/record.h"

namespace tardis {

class BlockStore {
 public:
  // Writes `dataset` into `dir` as blocks of `block_capacity` records each
  // (rids are assigned 0..m-1 in order) and returns an opened store.
  // Fails if the directory already contains a store.
  static Result<BlockStore> Create(const std::string& dir,
                                   const Dataset& dataset,
                                   uint32_t block_capacity);

  // Opens an existing store created by Create().
  static Result<BlockStore> Open(const std::string& dir);

  uint32_t num_blocks() const { return num_blocks_; }
  uint64_t num_records() const { return num_records_; }
  uint32_t series_length() const { return series_length_; }
  uint32_t block_capacity() const { return block_capacity_; }
  const std::string& dir() const { return dir_; }

  // Reads all records of block `index` (one sequential file read).
  Result<std::vector<Record>> ReadBlock(uint32_t index) const;

  // Chooses ceil(percent/100 * num_blocks) distinct block indices uniformly
  // at random — the paper's block-level sampling. percent in (0, 100].
  std::vector<uint32_t> SampleBlocks(double percent, Rng* rng) const;

  // Total bytes of all block files (used by size accounting in benches).
  uint64_t TotalBytes() const;

 private:
  BlockStore() = default;

  std::string BlockPath(uint32_t index) const;

  std::string dir_;
  uint32_t num_blocks_ = 0;
  uint64_t num_records_ = 0;
  uint32_t series_length_ = 0;
  uint32_t block_capacity_ = 0;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_BLOCK_STORE_H_

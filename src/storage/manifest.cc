#include "storage/manifest.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/crc32c.h"
#include "common/file_util.h"
#include "common/serde.h"

namespace fs = std::filesystem;

namespace tardis {

namespace {

// A manifest file is exactly one frame:
//   [magic u32 | payload_len u32 | crc32c(payload) u32 | payload]
// The magic ("TMN1") differs from the partition-file frame magic ("TFM1") so
// a manifest fed to the sidecar reader — or vice versa — fails at the magic
// check instead of decoding as plausible garbage.
constexpr uint32_t kManifestMagic = 0x314E4D54u;  // "TMN1" little-endian
constexpr size_t kFrameHeaderBytes = 12;

// Decode-time cap on the partition count; matches the part_%06u namespace
// (and keeps a fuzzed 32-bit count from driving a multi-GiB reserve).
constexpr uint32_t kMaxManifestPartitions = 1u << 22;

constexpr char kManifestPrefix[] = "MANIFEST-";
constexpr size_t kManifestPrefixLen = sizeof(kManifestPrefix) - 1;

// Smallest encoded ManifestPartition: base_records u32 + sidecar_gen u64 +
// delta count u32.
constexpr size_t kMinPartitionBytes = 4 + 8 + 4;

Status RemoveOrphan(const fs::path& path, RecoveryStats* stats) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    return Status::IOError("gc remove failed: " + path.string() + ": " +
                           ec.message());
  }
  if (stats != nullptr) ++stats->orphans_removed;
  return Status::OK();
}

// Splits a "part_NNNNNN.<rest>" file name; false for other names.
bool ParsePartitionFileName(std::string_view name, uint32_t* pid,
                            std::string_view* rest) {
  constexpr std::string_view kPrefix = "part_";
  constexpr size_t kDigits = 6;
  if (name.size() < kPrefix.size() + kDigits + 1) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  uint32_t value = 0;
  for (size_t i = 0; i < kDigits; ++i) {
    const char c = name[kPrefix.size() + i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  if (name[kPrefix.size() + kDigits] != '.') return false;
  *pid = value;
  *rest = name.substr(kPrefix.size() + kDigits + 1);
  return true;
}

// Parses the "g<gen>.<base>" sidecar-name scheme: "bloom" → (0, "bloom"),
// "g7.bloom" → (7, "bloom"). Bare names are generation 0.
bool ParseGenSidecar(std::string_view rest, uint64_t* gen,
                     std::string_view* base) {
  if (rest.size() < 2 || rest[0] != 'g' || rest[1] < '0' || rest[1] > '9') {
    *gen = 0;
    *base = rest;
    return true;
  }
  uint64_t value = 0;
  size_t i = 1;
  for (; i < rest.size(); ++i) {
    const char c = rest[i];
    if (c == '.') break;
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - 9) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (i == 1 || i >= rest.size()) return false;  // no digits or no ".base"
  *gen = value;
  *base = rest.substr(i + 1);
  return true;
}

}  // namespace

uint64_t Manifest::num_delta_files() const {
  uint64_t total = 0;
  for (const ManifestPartition& p : partitions) total += p.delta_gens.size();
  return total;
}

void Manifest::EncodeTo(std::string* out) const {
  PutFixed<uint64_t>(out, generation);
  PutFixed<uint32_t>(out, series_length);
  PutFixed<uint64_t>(out, meta_gen);
  PutFixed<uint32_t>(out, static_cast<uint32_t>(partitions.size()));
  for (const ManifestPartition& p : partitions) {
    PutFixed<uint32_t>(out, p.base_records);
    PutFixed<uint64_t>(out, p.sidecar_gen);
    PutFixed<uint32_t>(out, static_cast<uint32_t>(p.delta_gens.size()));
    for (const uint64_t g : p.delta_gens) PutFixed<uint64_t>(out, g);
  }
}

Result<Manifest> Manifest::Decode(std::string_view payload) {
  SliceReader reader(payload);
  Manifest m;
  uint32_t num_partitions = 0;
  if (!reader.GetFixed(&m.generation) || !reader.GetFixed(&m.series_length) ||
      !reader.GetFixed(&m.meta_gen) || !reader.GetFixed(&num_partitions)) {
    return Status::Corruption("manifest: truncated header");
  }
  if (m.generation == 0) {
    return Status::Corruption("manifest: generation 0 is reserved");
  }
  if (num_partitions > kMaxManifestPartitions ||
      static_cast<uint64_t>(num_partitions) * kMinPartitionBytes >
          reader.remaining()) {
    return Status::Corruption("manifest: implausible partition count");
  }
  m.partitions.resize(num_partitions);
  for (ManifestPartition& p : m.partitions) {
    uint32_t num_deltas = 0;
    if (!reader.GetFixed(&p.base_records) || !reader.GetFixed(&p.sidecar_gen) ||
        !reader.GetFixed(&num_deltas)) {
      return Status::Corruption("manifest: truncated partition entry");
    }
    if (static_cast<uint64_t>(num_deltas) * sizeof(uint64_t) >
        reader.remaining()) {
      return Status::Corruption("manifest: implausible delta count");
    }
    p.delta_gens.resize(num_deltas);
    for (uint64_t& g : p.delta_gens) {
      if (!reader.GetFixed(&g)) {
        return Status::Corruption("manifest: truncated delta list");
      }
      if (g == 0 || g > m.generation) {
        return Status::Corruption("manifest: delta generation out of range");
      }
    }
    if (p.sidecar_gen > m.generation) {
      return Status::Corruption("manifest: sidecar generation out of range");
    }
  }
  if (!reader.empty()) {
    return Status::Corruption("manifest: trailing bytes");
  }
  return m;
}

std::string ManifestFileName(uint64_t generation) {
  char name[32];
  std::snprintf(name, sizeof(name), "MANIFEST-%010llu",
                static_cast<unsigned long long>(generation));
  return name;
}

std::string MetaFileName(uint64_t meta_gen) {
  if (meta_gen == 0) return "tardis_meta.bin";
  char name[48];
  std::snprintf(name, sizeof(name), "tardis_meta.g%llu.bin",
                static_cast<unsigned long long>(meta_gen));
  return name;
}

std::string GenSidecarName(const std::string& name, uint64_t gen) {
  if (gen == 0) return name;
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "g%llu.",
                static_cast<unsigned long long>(gen));
  return prefix + name;
}

std::string DeltaSidecarName(uint64_t gen) {
  return GenSidecarName("delta", gen);
}

bool ParseManifestFileName(std::string_view name, uint64_t* generation) {
  if (name.size() <= kManifestPrefixLen) return false;
  if (name.substr(0, kManifestPrefixLen) != kManifestPrefix) return false;
  uint64_t value = 0;
  for (const char c : name.substr(kManifestPrefixLen)) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - 9) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = value;
  return true;
}

Status WriteManifest(const std::string& dir, const Manifest& m) {
  if (m.generation == 0) {
    return Status::InvalidArgument("manifest generation 0 is reserved");
  }
  std::string payload;
  m.EncodeTo(&payload);
  std::string framed;
  framed.reserve(kFrameHeaderBytes + payload.size());
  PutFixed<uint32_t>(&framed, kManifestMagic);
  PutFixed<uint32_t>(&framed, static_cast<uint32_t>(payload.size()));
  PutFixed<uint32_t>(&framed, Crc32c(payload));
  framed.append(payload);
  return WriteFileAtomic(dir + "/" + ManifestFileName(m.generation), framed);
}

Result<Manifest> LoadNewestManifest(const std::string& dir,
                                    RecoveryStats* stats) {
  std::vector<uint64_t> generations;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    uint64_t gen = 0;
    if (ParseManifestFileName(entry.path().filename().string(), &gen)) {
      generations.push_back(gen);
    }
  }
  if (ec) {
    // A directory that does not exist has no manifest — callers (Open)
    // distinguish "no manifest" from a real scan failure.
    std::error_code exists_ec;
    if (!fs::exists(dir, exists_ec)) {
      return Status::NotFound("no such index directory: " + dir);
    }
    return Status::IOError("manifest scan failed: " + dir + ": " +
                           ec.message());
  }
  std::sort(generations.rbegin(), generations.rend());
  for (const uint64_t gen : generations) {
    if (stats != nullptr) ++stats->manifests_scanned;
    const std::string path = dir + "/" + ManifestFileName(gen);
    Result<std::string> bytes = ReadFileToString(path);
    if (!bytes.ok()) {
      if (stats != nullptr) ++stats->manifests_invalid;
      continue;
    }
    // Verify the single frame, then decode the payload.
    const std::string_view file(bytes.value());
    bool frame_ok = file.size() >= kFrameHeaderBytes;
    uint32_t magic = 0, len = 0, crc = 0;
    if (frame_ok) {
      SliceReader header(file.substr(0, kFrameHeaderBytes));
      header.GetFixed(&magic);
      header.GetFixed(&len);
      header.GetFixed(&crc);
      frame_ok = magic == kManifestMagic &&
                 len == file.size() - kFrameHeaderBytes &&
                 Crc32c(file.substr(kFrameHeaderBytes)) == crc;
    }
    if (!frame_ok) {
      if (stats != nullptr) ++stats->manifests_invalid;
      continue;
    }
    Result<Manifest> m = Manifest::Decode(file.substr(kFrameHeaderBytes));
    if (!m.ok() || m.value().generation != gen) {
      if (stats != nullptr) ++stats->manifests_invalid;
      continue;
    }
    if (stats != nullptr) {
      stats->deltas_referenced += m.value().num_delta_files();
    }
    return m;
  }
  return Status::NotFound("no valid manifest in " + dir);
}

Status GarbageCollectUnreferenced(const std::string& dir, const Manifest& m,
                                  RecoveryStats* stats) {
  std::error_code ec;
  std::vector<fs::path> entries;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) entries.push_back(entry.path());
  }
  if (ec) {
    return Status::IOError("gc scan failed: " + dir + ": " + ec.message());
  }
  for (const fs::path& path : entries) {
    const std::string name = path.filename().string();

    // A ".tmp" left by a crashed WriteFileAtomic is always an orphan.
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      TARDIS_RETURN_NOT_OK(RemoveOrphan(path, stats));
      continue;
    }

    uint64_t gen = 0;
    if (ParseManifestFileName(name, &gen)) {
      if (gen != m.generation) TARDIS_RETURN_NOT_OK(RemoveOrphan(path, stats));
      continue;
    }

    if (name == MetaFileName(m.meta_gen)) continue;
    if (name.rfind("tardis_meta.", 0) == 0) {
      TARDIS_RETURN_NOT_OK(RemoveOrphan(path, stats));
      continue;
    }

    uint32_t pid = 0;
    std::string_view rest;
    if (!ParsePartitionFileName(name, &pid, &rest)) continue;  // not ours
    if (pid >= m.partitions.size()) {
      TARDIS_RETURN_NOT_OK(RemoveOrphan(path, stats));
      continue;
    }
    if (rest == "bin") continue;  // base partition file, always referenced
    uint64_t sidecar_gen = 0;
    std::string_view base;
    if (!ParseGenSidecar(rest, &sidecar_gen, &base)) continue;
    const ManifestPartition& p = m.partitions[pid];
    bool referenced;
    if (base == "delta") {
      referenced = std::find(p.delta_gens.begin(), p.delta_gens.end(),
                             sidecar_gen) != p.delta_gens.end();
    } else if (base == "bloom" || base == "region" || base == "pivotd") {
      referenced = sidecar_gen == p.sidecar_gen;
    } else if (base == "ltree" || base == "rids") {
      // The tree and row-id map are written once at build time and only ever
      // replaced wholesale by a rebuild.
      referenced = sidecar_gen == 0;
    } else {
      continue;  // unknown sidecar kind: leave it alone
    }
    if (!referenced) TARDIS_RETURN_NOT_OK(RemoveOrphan(path, stats));
  }
  return Status::OK();
}

}  // namespace tardis

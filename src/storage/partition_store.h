// PartitionStore: the shuffled, clustered dataset — one binary file per
// index partition, written by the cluster shuffle and read wholesale at
// query time (the paper's "load the partition" step, which models an HDFS
// partition read).
//
// Each partition may carry named sidecar files; TARDIS stores the serialized
// Tardis-L tree skeleton and the partition Bloom filter this way.
//
// On disk, record files and sidecars are CRC32C-framed (mirroring HDFS block
// checksums): every write emits a [magic|length|crc32c] header ahead of its
// payload, appends add one frame per flush, and the read paths verify every
// frame — corruption surfaces as StatusCode::kCorruption naming the file and
// frame offset, never as garbage records. Replacing writes go through a
// temp-file + rename so a crashed writer cannot leave a half-written file
// under the final name.

#ifndef TARDIS_STORAGE_PARTITION_STORE_H_
#define TARDIS_STORAGE_PARTITION_STORE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/partition_arena.h"
#include "storage/record.h"

namespace tardis {

class PartitionStore {
 public:
  // Creates (or opens) a store rooted at `dir` for records of
  // `series_length` values.
  static Result<PartitionStore> Open(const std::string& dir,
                                     uint32_t series_length);

  uint32_t series_length() const { return series_length_; }
  const std::string& dir() const { return dir_; }

  // Writes (replaces) the record file of partition `pid`.
  Status WritePartition(PartitionId pid, const std::vector<Record>& records) const;

  // Writes a pre-encoded record buffer (avoids re-encoding after a shuffle).
  Status WritePartitionRaw(PartitionId pid, const std::string& bytes) const;

  // Appends a pre-encoded record buffer to partition `pid`'s file, creating
  // it if absent. This is the streaming-shuffle flush path: workers spill
  // bounded buffers here instead of materialising whole partitions in RAM.
  // Callers must serialize concurrent appends to the same partition.
  Status AppendPartitionRaw(PartitionId pid, const std::string& bytes) const;

  // Reads all records of partition `pid` — one sequential file read.
  Result<std::vector<Record>> ReadPartition(PartitionId pid) const;

  // Reads partition `pid` straight into a columnar arena: one sequential
  // file read, one decode pass from the verified frame payload. This is the
  // query-path loader; ReadPartition remains for build/append/tooling paths
  // that want AoS records.
  Result<PartitionArena> ReadPartitionArena(PartitionId pid) const;

  // Reads partition `pid`'s base record file plus the listed delta sidecars
  // (epoch append tails; storage/manifest.h) concatenated in order into one
  // arena. The arena's num_base_records() is set to the base file's row
  // count, so rows past it are the delta tail the persisted tree does not
  // cover. Equivalent to ReadPartitionArena when `delta_gens` is empty.
  Result<PartitionArena> ReadPartitionArenaWithDeltas(
      PartitionId pid, const std::vector<uint64_t>& delta_gens) const;

  // AoS counterpart for build/append/tooling paths. When `num_base_records`
  // is non-null it receives the base file's row count.
  Result<std::vector<Record>> ReadPartitionWithDeltas(
      PartitionId pid, const std::vector<uint64_t>& delta_gens,
      size_t* num_base_records) const;

  // Deletes partition `pid`'s record file (used by un-clustered indexes,
  // which keep only sidecars). Missing files are not an error.
  Status RemovePartition(PartitionId pid) const;

  // Size in bytes of a partition's record file.
  Result<uint64_t> PartitionBytes(PartitionId pid) const;

  // Named sidecar blobs (index skeletons, Bloom filters).
  Status WriteSidecar(PartitionId pid, const std::string& name,
                      const std::string& bytes) const;
  Result<std::string> ReadSidecar(PartitionId pid, const std::string& name) const;
  Result<uint64_t> SidecarBytes(PartitionId pid, const std::string& name) const;

 private:
  PartitionStore(std::string dir, uint32_t series_length)
      : dir_(std::move(dir)), series_length_(series_length) {}

  std::string PartitionPath(PartitionId pid) const;
  std::string SidecarPath(PartitionId pid, const std::string& name) const;

  std::string dir_;
  uint32_t series_length_;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_PARTITION_STORE_H_

// PartitionArena: a decoded partition as one contiguous allocation.
//
// The legacy decode produced std::vector<Record>, where every record owns a
// heap-allocated TimeSeries — a pointer chase per candidate before the
// distance kernels can stream floats. The arena instead lays the partition
// out structure-of-arrays:
//
//   [ values plane : num_records x series_length f32, base 64-byte aligned ]
//   [ rid array    : num_records u64, 8-byte aligned                      ]
//
// both carved from a single aligned allocation. Row i of the values plane
// starts at values_plane() + i * stride() (stride == series_length), so a
// scan walks memory strictly forward and the batch kernels can prefetch row
// i+1 while ranking row i. The rid array lives after the plane (padded to an
// 8-byte boundary) rather than interleaved: rids are only touched for the
// few candidates that survive ranking, and keeping them out of the float
// stream keeps cache lines pure during the distance loop.
//
// Decoding is single-pass from the CRC-verified frame payload (the PR 3
// framing is untouched): FromPayload reads each [rid u64 LE][f32 x len]
// record straight into the arena, bit-identical to DecodeRecord, with the
// same corruption guards as PartitionStore::ReadPartition.

#ifndef TARDIS_STORAGE_PARTITION_ARENA_H_
#define TARDIS_STORAGE_PARTITION_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/record.h"
#include "ts/time_series.h"

namespace tardis {

class PartitionArena {
 public:
  // Values plane base alignment; also the prefetch granularity.
  static constexpr size_t kAlignment = 64;

  PartitionArena() = default;
  ~PartitionArena();

  PartitionArena(PartitionArena&& other) noexcept;
  PartitionArena& operator=(PartitionArena&& other) noexcept;
  PartitionArena(const PartitionArena&) = delete;
  PartitionArena& operator=(const PartitionArena&) = delete;

  // An empty arena sized for `num_records` records of `series_length`
  // values, ready to be filled via mutable_values()/set_rid().
  static PartitionArena Allocate(uint32_t num_records, uint32_t series_length);

  // Single-pass decode from a verified partition frame payload. Bit-identical
  // to a DecodeRecord loop; `path` is only used in error messages, mirroring
  // ReadPartition's corruption reporting.
  static Result<PartitionArena> FromPayload(std::string_view payload,
                                            uint32_t series_length,
                                            const std::string& path);

  // Converts a legacy AoS partition. All records must have
  // `series_length` values.
  static PartitionArena FromRecords(const std::vector<Record>& records,
                                    uint32_t series_length);

  uint32_t num_records() const { return num_records_; }
  // Rows covered by the partition's persisted Tardis-L tree. Rows
  // [num_base_records, num_records) were loaded from epoch delta files and
  // form the always-scanned tail — no tree leaf or region range points at
  // them. Equal to num_records() unless a delta-aware loader says otherwise.
  uint32_t num_base_records() const { return num_base_records_; }
  void set_num_base_records(uint32_t n) { num_base_records_ = n; }
  uint32_t series_length() const { return series_length_; }
  // Distance in floats between consecutive rows of the values plane.
  size_t stride() const { return series_length_; }

  const float* values_plane() const { return values_; }
  const float* values(uint32_t i) const {
    return values_ + static_cast<size_t>(i) * series_length_;
  }
  const RecordId* rids() const { return rids_; }
  RecordId rid(uint32_t i) const { return rids_[i]; }

  float* mutable_values(uint32_t i) {
    return values_ + static_cast<size_t>(i) * series_length_;
  }
  void set_rid(uint32_t i, RecordId rid) { rids_[i] = rid; }

  // --- Pivot-distance plane (core/pivots.h; DESIGN.md §10) ---
  // An optional columnar plane of per-record pivot distances: row i holds
  // num_pivots() floats, the distances from record i to each pivot in pivot
  // order. Loaded from the "pivotd" sidecar next to the partition file and
  // kept as a separate aligned allocation so the values plane layout (and
  // its decode path) is untouched.
  //
  // Attaches the decoded payload of a "pivotd" sidecar:
  //   [u32 num_pivots][u32 num_records][f32 row-major distances].
  // Fails if the record count disagrees with this arena.
  Status AttachPivotSidecar(std::string_view payload, const std::string& path);
  // Attaches `num_records() * num_pivots` raw distances (build/tests).
  void AttachPivots(uint32_t num_pivots, const float* dists);

  bool has_pivots() const { return num_pivots_ > 0; }
  uint32_t num_pivots() const { return num_pivots_; }
  const float* pivot_row(uint32_t i) const {
    return pivot_plane_ + static_cast<size_t>(i) * num_pivots_;
  }
  const float* pivot_plane() const { return pivot_plane_; }

  // Bytes of the single backing allocation (values plane + pad + rids).
  uint64_t AllocatedBytes() const { return allocated_bytes_; }
  // Exact in-memory footprint: object header plus the backing allocation
  // plus the optional pivot plane. This is what the PartitionCache charges
  // against its byte budget.
  uint64_t FootprintBytes() const {
    return sizeof(PartitionArena) + allocated_bytes_ + pivot_bytes_;
  }

  // Materializes the legacy AoS form (tooling / compatibility paths).
  std::vector<Record> ToRecords() const;

 private:
  float* values_ = nullptr;    // into arena_
  RecordId* rids_ = nullptr;   // into arena_
  void* arena_ = nullptr;      // single aligned allocation
  uint64_t allocated_bytes_ = 0;
  uint32_t num_records_ = 0;
  uint32_t num_base_records_ = 0;  // kept == num_records_ unless deltas loaded
  uint32_t series_length_ = 0;
  float* pivot_plane_ = nullptr;  // separate aligned allocation (optional)
  uint64_t pivot_bytes_ = 0;
  uint32_t num_pivots_ = 0;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_PARTITION_ARENA_H_

#include "storage/block_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/serde.h"
#include "common/telemetry.h"

namespace fs = std::filesystem;

namespace tardis {

namespace {
constexpr uint64_t kMetaMagic = 0x5441524449534253ULL;  // "TARDISBS"
}  // namespace

std::string BlockStore::BlockPath(uint32_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "block_%06u.bin", index);
  return dir_ + "/" + name;
}

Result<BlockStore> BlockStore::Create(const std::string& dir,
                                      const Dataset& dataset,
                                      uint32_t block_capacity) {
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (block_capacity == 0) return Status::InvalidArgument("block capacity must be > 0");
  const uint32_t series_length = static_cast<uint32_t>(dataset[0].size());
  if (series_length == 0) return Status::InvalidArgument("zero-length series");
  for (const auto& ts : dataset) {
    if (ts.size() != series_length) {
      return Status::InvalidArgument("dataset series lengths differ");
    }
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("mkdir failed: " + dir + ": " + ec.message());
  if (fs::exists(dir + "/meta.bin")) {
    return Status::AlreadyExists("block store already exists in " + dir);
  }

  BlockStore store;
  store.dir_ = dir;
  store.series_length_ = series_length;
  store.block_capacity_ = block_capacity;
  store.num_records_ = dataset.size();
  store.num_blocks_ = static_cast<uint32_t>(
      (dataset.size() + block_capacity - 1) / block_capacity);

  Record rec;
  for (uint32_t b = 0; b < store.num_blocks_; ++b) {
    const uint64_t begin = static_cast<uint64_t>(b) * block_capacity;
    const uint64_t end = std::min<uint64_t>(begin + block_capacity, dataset.size());
    std::string bytes;
    bytes.reserve((end - begin) * RecordEncodedSize(series_length));
    for (uint64_t r = begin; r < end; ++r) {
      rec.rid = r;
      rec.values = dataset[r];
      EncodeRecord(rec, &bytes);
    }
    TARDIS_RETURN_NOT_OK(WriteFileAtomic(store.BlockPath(b), bytes));
  }

  std::string meta;
  PutFixed<uint64_t>(&meta, kMetaMagic);
  PutFixed<uint64_t>(&meta, store.num_records_);
  PutFixed<uint32_t>(&meta, store.num_blocks_);
  PutFixed<uint32_t>(&meta, store.series_length_);
  PutFixed<uint32_t>(&meta, store.block_capacity_);
  TARDIS_RETURN_NOT_OK(WriteFileAtomic(dir + "/meta.bin", meta));
  return store;
}

Result<BlockStore> BlockStore::Open(const std::string& dir) {
  TARDIS_ASSIGN_OR_RETURN(std::string meta, ReadFileToString(dir + "/meta.bin"));
  SliceReader reader(meta);
  uint64_t magic = 0;
  BlockStore store;
  store.dir_ = dir;
  if (!reader.GetFixed(&magic) || magic != kMetaMagic ||
      !reader.GetFixed(&store.num_records_) ||
      !reader.GetFixed(&store.num_blocks_) ||
      !reader.GetFixed(&store.series_length_) ||
      !reader.GetFixed(&store.block_capacity_)) {
    return Status::Corruption("bad block store meta in " + dir);
  }
  return store;
}

Result<std::vector<Record>> BlockStore::ReadBlock(uint32_t index) const {
  if (index >= num_blocks_) {
    return Status::OutOfRange("block index out of range");
  }
  static telemetry::Histogram& read_us =
      telemetry::Registry::Global().GetHistogram(
          "tardis.storage.read_block_us");
  telemetry::ScopedLatency timer(read_us);
  TARDIS_RETURN_NOT_OK(MaybeInjectFault(FaultSite::kReadBlock, BlockPath(index)));
  TARDIS_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(BlockPath(index)));
  if (telemetry::Enabled()) {
    static telemetry::Counter& bytes_read =
        telemetry::Registry::Global().GetCounter(
            "tardis.storage.block_bytes_read");
    bytes_read.Add(bytes.size());
  }
  const size_t rec_size = RecordEncodedSize(series_length_);
  if (bytes.size() % rec_size != 0) {
    return Status::Corruption("block file size not a record multiple");
  }
  std::vector<Record> records(bytes.size() / rec_size);
  SliceReader reader(bytes);
  for (auto& rec : records) {
    if (!DecodeRecord(&reader, series_length_, &rec)) {
      return Status::Corruption("truncated record in block");
    }
  }
  return records;
}

std::vector<uint32_t> BlockStore::SampleBlocks(double percent, Rng* rng) const {
  std::vector<uint32_t> all(num_blocks_);
  for (uint32_t i = 0; i < num_blocks_; ++i) all[i] = i;
  if (percent >= 100.0) return all;
  const uint32_t want = std::max<uint32_t>(
      1, static_cast<uint32_t>(percent / 100.0 * num_blocks_ + 0.5));
  // Partial Fisher-Yates: the first `want` entries become the sample.
  for (uint32_t i = 0; i < want; ++i) {
    const uint32_t j =
        i + static_cast<uint32_t>(rng->NextBounded(num_blocks_ - i));
    std::swap(all[i], all[j]);
  }
  all.resize(want);
  std::sort(all.begin(), all.end());
  return all;
}

uint64_t BlockStore::TotalBytes() const {
  return num_records_ * RecordEncodedSize(series_length_);
}

}  // namespace tardis

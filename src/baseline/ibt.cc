#include "baseline/ibt.h"

#include <algorithm>
#include <cassert>

#include "common/serde.h"

namespace tardis {

IBTree::IBTree(uint32_t word_length, uint8_t max_bits, SplitPolicy policy,
               uint64_t split_threshold)
    : w_(word_length),
      max_bits_(max_bits),
      policy_(policy),
      split_threshold_(split_threshold),
      root_(std::make_unique<Node>()) {
  assert(w_ >= 1 && max_bits_ >= 1);
  root_->sig.max_bits = max_bits_;
  root_->sig.full_symbols.assign(w_, 0);
  root_->sig.char_bits.assign(w_, 0);
}

size_t IBTree::ChildIndex(const Node& node, const ISaxSignature& full_sig) {
  assert(node.split_char >= 0 && node.children.size() == 2);
  const size_t c = static_cast<size_t>(node.split_char);
  const uint8_t child_bits = node.children[0]->sig.char_bits[c];
  const uint32_t bit =
      (full_sig.full_symbols[c] >> (full_sig.max_bits - child_bits)) & 1u;
  return bit;
}

IBTree::Node* IBTree::GetOrCreateFirstLayer(const ISaxSignature& full_sig) {
  // Linear probe over occupied 1-bit cells. The root fan-out is <= 2^w; for
  // the baseline's honest cost model this per-character comparison is
  // exactly the overhead §II-C describes.
  for (auto& child : root_->children) {
    if (full_sig.MatchesPrefix(child->sig)) return child.get();
  }
  auto node = std::make_unique<Node>();
  node->sig.max_bits = max_bits_;
  node->sig.full_symbols.resize(w_);
  node->sig.char_bits.assign(w_, 1);
  for (uint32_t i = 0; i < w_; ++i) {
    const uint16_t top_bit =
        static_cast<uint16_t>((full_sig.full_symbols[i] >> (max_bits_ - 1)) & 1u);
    node->sig.full_symbols[i] = static_cast<uint16_t>(top_bit << (max_bits_ - 1));
  }
  node->parent = root_.get();
  node->depth = 1;
  Node* raw = node.get();
  root_->children.push_back(std::move(node));
  return raw;
}

IBTree::Node* IBTree::DescendToLeaf(const ISaxSignature& full_sig) const {
  Node* node = nullptr;
  for (auto& child : root_->children) {
    if (full_sig.MatchesPrefix(child->sig)) {
      node = child.get();
      break;
    }
  }
  if (node == nullptr) return root_.get();
  while (!node->is_leaf()) {
    node = node->children[ChildIndex(*node, full_sig)].get();
  }
  return node;
}

void IBTree::Insert(const ISaxSignature& full_sig, uint32_t record_index) {
  Node* node = GetOrCreateFirstLayer(full_sig);
  while (!node->is_leaf()) {
    node = node->children[ChildIndex(*node, full_sig)].get();
  }
  node->entries.emplace_back(full_sig, record_index);
  for (Node* p = node; p != nullptr; p = p->parent) ++p->count;
  if (node->entries.size() > split_threshold_) SplitLeaf(node);
}

IBTree IBTree::BulkLoad(uint32_t word_length, uint8_t max_bits,
                        SplitPolicy policy, uint64_t split_threshold,
                        std::vector<std::pair<ISaxSignature, uint32_t>> entries) {
  IBTree tree(word_length, max_bits, policy, split_threshold);
  // Phase 1: bucket everything into the (at most 2^w) first-layer cells.
  for (auto& [sig, idx] : entries) {
    Node* cell = tree.GetOrCreateFirstLayer(sig);
    ++cell->count;
    ++tree.root_->count;
    cell->entries.emplace_back(std::move(sig), idx);
  }
  // Phase 2: split each over-full cell once against its complete contents.
  for (auto& cell : tree.root_->children) {
    if (cell->entries.size() > split_threshold) tree.SplitLeaf(cell.get());
  }
  return tree;
}

int IBTree::ChooseSplitChar(const Node& leaf) const {
  auto promotable = [&](size_t c) {
    return leaf.sig.char_bits[c] < max_bits_;
  };
  if (policy_ == SplitPolicy::kRoundRobin) {
    // Cycle by depth, skipping exhausted characters [10].
    for (uint32_t probe = 0; probe < w_; ++probe) {
      const size_t c = (leaf.depth - 1 + probe) % w_;
      if (promotable(c)) return static_cast<int>(c);
    }
    return -1;
  }
  // Statistics-based policy [11]: promote the character whose next bit
  // divides the leaf's entries most evenly.
  int best = -1;
  uint64_t best_imbalance = ~0ULL;
  for (size_t c = 0; c < w_; ++c) {
    if (!promotable(c)) continue;
    const uint8_t child_bits = static_cast<uint8_t>(leaf.sig.char_bits[c] + 1);
    uint64_t ones = 0;
    for (const auto& [sig, idx] : leaf.entries) {
      ones += (sig.full_symbols[c] >> (max_bits_ - child_bits)) & 1u;
    }
    const uint64_t n = leaf.entries.size();
    const uint64_t imbalance = ones * 2 > n ? ones * 2 - n : n - ones * 2;
    if (imbalance < best_imbalance) {
      best_imbalance = imbalance;
      best = static_cast<int>(c);
    }
  }
  return best;
}

void IBTree::SplitLeaf(Node* leaf) {
  const int c = ChooseSplitChar(*leaf);
  if (c < 0) return;  // every character is at max cardinality: cannot split
  leaf->split_char = c;
  const uint8_t child_bits = static_cast<uint8_t>(leaf->sig.char_bits[c] + 1);
  for (uint32_t bit = 0; bit < 2; ++bit) {
    auto child = std::make_unique<Node>();
    child->sig = ISaxPromote(leaf->sig, static_cast<size_t>(c));
    child->sig.full_symbols[c] = static_cast<uint16_t>(
        child->sig.full_symbols[c] |
        (bit << (max_bits_ - child_bits)));
    child->parent = leaf;
    child->depth = leaf->depth + 1;
    leaf->children.push_back(std::move(child));
  }
  auto entries = std::move(leaf->entries);
  leaf->entries.clear();
  for (auto& [sig, idx] : entries) {
    const size_t which = ChildIndex(*leaf, sig);
    Node* child = leaf->children[which].get();
    ++child->count;
    child->entries.emplace_back(std::move(sig), idx);
  }
  for (auto& child : leaf->children) {
    if (child->entries.size() > split_threshold_) SplitLeaf(child.get());
  }
}

namespace {
void AssignRangesRec(IBTree::Node& node, std::vector<uint32_t>* order) {
  node.range_start = static_cast<uint32_t>(order->size());
  if (node.is_leaf()) {
    node.range_len = static_cast<uint32_t>(node.entries.size());
    for (auto& [sig, idx] : node.entries) order->push_back(idx);
    node.entries.clear();
    node.entries.shrink_to_fit();
    return;
  }
  for (auto& child : node.children) AssignRangesRec(*child, order);
  node.range_len = static_cast<uint32_t>(order->size()) - node.range_start;
}

void VisitConst(const IBTree::Node& node,
                const std::function<void(const IBTree::Node&)>& fn) {
  fn(node);
  for (const auto& child : node.children) VisitConst(*child, fn);
}
}  // namespace

void IBTree::AssignClusteredRanges(std::vector<uint32_t>* order) {
  AssignRangesRec(*root_, order);
}

void IBTree::ForEachNode(const std::function<void(const Node&)>& fn) const {
  VisitConst(*root_, fn);
}

IBTree::Stats IBTree::ComputeStats() const {
  Stats stats;
  uint64_t depth_sum = 0, count_sum = 0;
  ForEachNode([&](const Node& node) {
    if (&node == root_.get()) return;
    if (node.is_leaf()) {
      ++stats.leaf_nodes;
      depth_sum += node.depth;
      count_sum += node.count;
      stats.max_depth = std::max<uint64_t>(stats.max_depth, node.depth);
    } else {
      ++stats.internal_nodes;
    }
  });
  if (stats.leaf_nodes > 0) {
    stats.avg_leaf_depth = static_cast<double>(depth_sum) / stats.leaf_nodes;
    stats.avg_leaf_count = static_cast<double>(count_sum) / stats.leaf_nodes;
  }
  return stats;
}

namespace {
void EncodeNode(const IBTree::Node& node, uint32_t w, std::string* out) {
  PutFixed<int32_t>(out, node.split_char);
  PutFixed<uint64_t>(out, node.count);
  PutFixed<uint32_t>(out, node.range_start);
  PutFixed<uint32_t>(out, node.range_len);
  for (uint32_t i = 0; i < w; ++i) {
    PutFixed<uint8_t>(out, node.sig.char_bits[i]);
    PutFixed<uint16_t>(out, node.sig.full_symbols[i]);
  }
  PutFixed<uint32_t>(out, static_cast<uint32_t>(node.children.size()));
  for (const auto& child : node.children) EncodeNode(*child, w, out);
}

// Hard cap on decode recursion: a hostile file can encode a single-child
// chain at ~(24 + 3w) bytes per level, overflowing the stack well before
// the per-node byte-budget checks reject it.
constexpr uint32_t kMaxDecodeDepth = 512;

Status DecodeNode(SliceReader* reader, IBTree::Node* node, uint32_t w,
                  uint8_t max_bits, uint32_t depth) {
  if (depth > kMaxDecodeDepth) {
    return Status::Corruption("ibt: node nesting too deep");
  }
  int32_t split_char = -1;
  uint32_t num_children = 0;
  if (!reader->GetFixed(&split_char) || !reader->GetFixed(&node->count) ||
      !reader->GetFixed(&node->range_start) ||
      !reader->GetFixed(&node->range_len)) {
    return Status::Corruption("ibt: truncated node");
  }
  node->split_char = split_char;
  node->depth = depth;
  node->sig.max_bits = max_bits;
  node->sig.char_bits.resize(w);
  node->sig.full_symbols.resize(w);
  for (uint32_t i = 0; i < w; ++i) {
    if (!reader->GetFixed(&node->sig.char_bits[i]) ||
        !reader->GetFixed(&node->sig.full_symbols[i])) {
      return Status::Corruption("ibt: truncated signature");
    }
  }
  // Every child costs at least a fixed node header plus w signature chars;
  // bounding by the remaining bytes keeps a corrupt count from allocating
  // far beyond the file's actual size.
  if (!reader->GetFixed(&num_children) || num_children > (1u << 24) ||
      num_children > reader->remaining() / (24 + 3ull * w)) {
    return Status::Corruption("ibt: bad child count");
  }
  for (uint32_t i = 0; i < num_children; ++i) {
    auto child = std::make_unique<IBTree::Node>();
    child->parent = node;
    TARDIS_RETURN_NOT_OK(DecodeNode(reader, child.get(), w, max_bits, depth + 1));
    node->children.push_back(std::move(child));
  }
  return Status::OK();
}
}  // namespace

void IBTree::EncodeTo(std::string* out) const {
  PutFixed<uint32_t>(out, w_);
  PutFixed<uint8_t>(out, max_bits_);
  PutFixed<uint8_t>(out, policy_ == SplitPolicy::kRoundRobin ? 0 : 1);
  PutFixed<uint64_t>(out, split_threshold_);
  EncodeNode(*root_, w_, out);
}

Result<IBTree> IBTree::Decode(std::string_view in) {
  SliceReader reader(in);
  uint32_t w = 0;
  uint8_t max_bits = 0, policy = 0;
  uint64_t threshold = 0;
  if (!reader.GetFixed(&w) || !reader.GetFixed(&max_bits) ||
      !reader.GetFixed(&policy) || !reader.GetFixed(&threshold) || w == 0 ||
      max_bits == 0) {
    return Status::Corruption("ibt: truncated header");
  }
  // Even the root node must carry 3 bytes of signature per word character,
  // so a `w` larger than the remaining payload can only come from a corrupt
  // header; reject it before DecodeNode's resize(w) allocates gigabytes.
  if (max_bits > 16 || w > reader.remaining() / 3) {
    return Status::Corruption("ibt: implausible header");
  }
  IBTree tree(w, max_bits,
              policy == 0 ? SplitPolicy::kRoundRobin : SplitPolicy::kStatistics,
              threshold);
  TARDIS_RETURN_NOT_OK(DecodeNode(&reader, tree.root_.get(), w, max_bits, 0));
  return tree;
}

}  // namespace tardis

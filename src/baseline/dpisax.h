// DPiSAX baseline [12] (paper §II-D): the distributed iSAX system TARDIS is
// evaluated against, extended — exactly as the paper's §VI-A describes — to
// support a clustered local index, exact-match queries, and kNN-approximate
// queries.
//
// Pipeline: sample signatures -> master-side iBT over the sample -> leaf
// cells become the *partition table* -> per-record variable-cardinality
// table matching routes the shuffle (the "high matching overhead" of §II-C)
// -> per-partition local iBTs with the large initial cardinality (512).

#ifndef TARDIS_BASELINE_DPISAX_H_
#define TARDIS_BASELINE_DPISAX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baseline/ibt.h"
#include "cluster/cluster.h"
#include "common/status.h"
#include "core/tardis_index.h"  // Neighbor, ExactMatchStats, KnnStats
#include "storage/block_store.h"
#include "storage/partition_cache.h"
#include "storage/partition_store.h"

namespace tardis {

struct DPiSaxConfig {
  uint32_t word_length = 8;
  // The baseline's large initial cardinality: 512 = 2^9 (Table II), needed
  // "to guarantee the split requirement" of character-level promotion.
  uint8_t max_bits = 9;
  uint64_t g_max_size = 10000;  // partition capacity (records)
  uint64_t l_max_size = 1000;   // local leaf split threshold
  double sampling_percent = 10.0;
  uint64_t seed = 42;
  // Clustered = the paper's extended baseline (data shuffled into
  // partitions, refine phase on raw values). Un-clustered = original
  // DPiSAX behaviour: results are ranked purely in signature space.
  bool clustered = true;
  IBTree::SplitPolicy split_policy = IBTree::SplitPolicy::kStatistics;
  // Query-side partition cache byte budget (0 disables). Kept identical to
  // TardisConfig's default so warm-cache comparisons stay apples-to-apples.
  uint64_t cache_budget_bytes = 64ull << 20;

  Status Validate() const {
    if (word_length == 0) return Status::InvalidArgument("word_length");
    if (max_bits < 1 || max_bits > 16) return Status::InvalidArgument("max_bits");
    if (g_max_size == 0 || l_max_size == 0) {
      return Status::InvalidArgument("split thresholds must be positive");
    }
    if (sampling_percent <= 0.0 || sampling_percent > 100.0) {
      return Status::InvalidArgument("sampling_percent");
    }
    return Status::OK();
  }
};

// The DPiSAX global index: a flat table of leaf-cell signatures with
// per-character cardinalities. Matching a record requires trying every
// distinct cardinality vector present in the table — the honest cost model
// of the baseline's lookup (§II-C "High matching overhead").
class PartitionTable {
 public:
  struct Entry {
    ISaxSignature sig;
    PartitionId pid = 0;
    uint64_t est_count = 0;
  };

  // Converts the leaves of a sample-built iBT into table entries with
  // sequential pids. `scale` rescales sampled leaf counts to full-dataset
  // estimates.
  static PartitionTable FromTree(const IBTree& tree, double scale);

  // Packs leaf cells into physical partitions of ~`capacity` records
  // (first-fit in table order). At the paper's scale every cell naturally
  // fills an HDFS block; at this repository's scale the iBT first layer
  // fragments the data into many small cells, and this models the fact that
  // small cells share a block on storage. Remaps entry pids in place.
  void PackInto(uint64_t capacity);

  // Region lookup: tries each cardinality-vector group; falls back to the
  // nearest entry (stripe-gap distance) for signatures outside every cell.
  PartitionId Lookup(const ISaxSignature& full_sig) const;

  uint32_t num_partitions() const { return num_partitions_; }
  const std::vector<Entry>& entries() const { return entries_; }
  // Number of distinct cardinality vectors (groups probed per lookup).
  size_t num_groups() const { return groups_.size(); }
  size_t SerializedSize() const;

 private:
  struct Group {
    std::vector<uint8_t> char_bits;
    std::unordered_map<std::string, PartitionId> keys;
  };

  std::vector<Entry> entries_;
  std::vector<Group> groups_;
  uint32_t num_partitions_ = 0;
};

class DPiSaxIndex {
 public:
  struct BuildTimings {
    double sample_seconds = 0.0;  // sampling + signature conversion
    double tree_seconds = 0.0;    // master-side iBT over the sample
    double table_seconds = 0.0;   // partition-table derivation
    double shuffle_seconds = 0.0;
    double local_build_seconds = 0.0;
    double GlobalSeconds() const {
      return sample_seconds + tree_seconds + table_seconds;
    }
    double TotalSeconds() const {
      return GlobalSeconds() + shuffle_seconds + local_build_seconds;
    }
  };

  struct SizeInfo {
    uint64_t global_bytes = 0;
    uint64_t local_tree_bytes = 0;
  };

  static Result<DPiSaxIndex> Build(std::shared_ptr<Cluster> cluster,
                                   const BlockStore& input,
                                   const std::string& partition_dir,
                                   const DPiSaxConfig& config,
                                   BuildTimings* timings);

  const DPiSaxConfig& config() const { return config_; }
  const PartitionTable& table() const { return table_; }
  uint32_t num_partitions() const { return table_.num_partitions(); }
  const std::vector<uint64_t>& partition_counts() const {
    return partition_counts_;
  }

  Result<SizeInfo> ComputeSizeInfo() const;

  // Exact match: table lookup -> partition load -> local iBT descent ->
  // raw-value verification. The baseline has no Bloom filter, so absent
  // queries still pay the partition load.
  Result<std::vector<RecordId>> ExactMatch(const TimeSeries& query,
                                           ExactMatchStats* stats) const;

  // kNN approximate: descend to the query's leaf, widen to the nearest
  // ancestor holding >= k entries, rank that clustered slice. In
  // un-clustered mode ranking uses signature-space distances only (no
  // refine), reproducing the original DPiSAX accuracy degradation.
  Result<std::vector<Neighbor>> KnnApproximate(const TimeSeries& query,
                                               uint32_t k,
                                               KnnStats* stats) const;

  // LoadPartition always reads from disk (legacy AoS form, kept for
  // tooling); queries go through LoadPartitionShared, which decodes the
  // partition into a columnar arena and consults the byte-budgeted cache
  // when one is configured (the same warm-partition behaviour the TARDIS
  // side gets).
  Result<std::vector<Record>> LoadPartition(PartitionId pid) const;
  Result<PartitionCache::Value> LoadPartitionShared(PartitionId pid) const;
  Result<IBTree> LoadLocalTree(PartitionId pid) const;

  const PartitionCache* partition_cache() const { return cache_.get(); }
  PartitionCacheStats CacheStats() const {
    return cache_ != nullptr ? cache_->Snapshot() : PartitionCacheStats{};
  }

 private:
  DPiSaxIndex(std::shared_ptr<Cluster> cluster, DPiSaxConfig config,
              PartitionTable table, PartitionStore partitions,
              uint32_t series_length)
      : cluster_(std::move(cluster)),
        config_(config),
        table_(std::move(table)),
        partitions_(std::make_unique<PartitionStore>(std::move(partitions))),
        series_length_(series_length) {
    if (config_.cache_budget_bytes > 0) {
      cache_ = std::make_unique<PartitionCache>(config_.cache_budget_bytes);
    }
  }

  Status PrepareQuery(const TimeSeries& query, std::vector<double>* paa,
                      ISaxSignature* sig) const;

  std::shared_ptr<Cluster> cluster_;
  DPiSaxConfig config_;
  PartitionTable table_;
  std::unique_ptr<PartitionStore> partitions_;
  std::unique_ptr<PartitionCache> cache_;
  uint32_t series_length_ = 0;
  std::vector<uint64_t> partition_counts_;
};

}  // namespace tardis

#endif  // TARDIS_BASELINE_DPISAX_H_

// iBT: the iSAX Binary Tree index (paper §II-C; iSAX [10], iSAX 2.0 [11]).
//
// The baseline index structure TARDIS is compared against. The first layer
// holds up to 2^w one-bit cells; below that, every split promotes the
// cardinality of exactly ONE character (character-level variable
// cardinality), producing a binary fan-out — hence the deep, internal-node-
// heavy trees whose limitations §II-C catalogues. Both split policies from
// the literature are implemented: round-robin [10] and the statistics-based
// policy of iSAX 2.0 [11].

#ifndef TARDIS_BASELINE_IBT_H_
#define TARDIS_BASELINE_IBT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ts/isax.h"
#include "ts/time_series.h"

namespace tardis {

class IBTree {
 public:
  enum class SplitPolicy {
    kRoundRobin,  // cycle through characters [10]
    kStatistics,  // pick the character that splits most evenly [11]
  };

  struct Node {
    // The node's signature with per-character cardinalities. For the root
    // this is empty (char_bits all zero).
    ISaxSignature sig;
    uint64_t count = 0;
    Node* parent = nullptr;
    // Root: one child per occupied 1-bit cell. Internal: exactly two
    // children produced by promoting `split_char`.
    std::vector<std::unique_ptr<Node>> children;
    int split_char = -1;
    // Leaf entries while building: (full-cardinality signature, record idx).
    std::vector<std::pair<ISaxSignature, uint32_t>> entries;
    // Clustered slice after AssignClusteredRanges.
    uint32_t range_start = 0;
    uint32_t range_len = 0;
    // Depth in the tree (root = 0; first layer = 1).
    uint32_t depth = 0;

    bool is_leaf() const { return children.empty(); }
  };

  struct Stats {
    uint64_t internal_nodes = 0;
    uint64_t leaf_nodes = 0;
    uint64_t max_depth = 0;
    double avg_leaf_depth = 0.0;
    double avg_leaf_count = 0.0;
  };

  IBTree(uint32_t word_length, uint8_t max_bits, SplitPolicy policy,
         uint64_t split_threshold);

  uint32_t word_length() const { return w_; }
  uint8_t max_bits() const { return max_bits_; }
  uint64_t split_threshold() const { return split_threshold_; }
  Node* root() { return root_.get(); }
  const Node* root() const { return root_.get(); }

  // Inserts a record with its full-cardinality iSAX signature; splits leaves
  // that exceed the threshold (and whose characters can still be promoted).
  void Insert(const ISaxSignature& full_sig, uint32_t record_index);

  // Bulk loading (iSAX 2.0 [11]'s mechanism): buckets all entries into the
  // first layer, then splits each cell once against the full data instead of
  // re-splitting incrementally. Produces the same leaf granularity as
  // repeated Insert with far fewer redistribution passes.
  static IBTree BulkLoad(uint32_t word_length, uint8_t max_bits,
                         SplitPolicy policy, uint64_t split_threshold,
                         std::vector<std::pair<ISaxSignature, uint32_t>> entries);

  // Descends to the unique leaf whose region covers `full_sig`. Returns the
  // root if the matching first-layer cell does not exist.
  Node* DescendToLeaf(const ISaxSignature& full_sig) const;

  // Flattens leaf entries into a clustered DFS order (mirrors
  // SigTree::AssignClusteredRanges, including internal-node union slices).
  void AssignClusteredRanges(std::vector<uint32_t>* order);

  void ForEachNode(const std::function<void(const Node&)>& fn) const;
  Stats ComputeStats() const;

  // Serialized structure round-trip (signatures, counts, ranges).
  void EncodeTo(std::string* out) const;
  static Result<IBTree> Decode(std::string_view in);

 private:
  Node* GetOrCreateFirstLayer(const ISaxSignature& full_sig);
  void SplitLeaf(Node* leaf);
  int ChooseSplitChar(const Node& leaf) const;
  // Index (0 or 1) of the child of `node` covering `full_sig`.
  static size_t ChildIndex(const Node& node, const ISaxSignature& full_sig);

  uint32_t w_;
  uint8_t max_bits_;
  SplitPolicy policy_;
  uint64_t split_threshold_;
  std::unique_ptr<Node> root_;
};

}  // namespace tardis

#endif  // TARDIS_BASELINE_IBT_H_

#include "baseline/dpisax.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "cluster/map_reduce.h"
#include "common/gaussian.h"
#include "common/stopwatch.h"
#include "ts/distance.h"
#include "ts/paa.h"

namespace tardis {

namespace {
constexpr char kTreeSidecar[] = "ibt";

// Stripe-gap between two exposed symbols at possibly different per-char
// cardinalities (zero when the stripes overlap).
double CharGap(uint16_t sym_a, uint8_t bits_a, uint16_t sym_b, uint8_t bits_b) {
  const double lo_a = BreakpointTable::Lower(sym_a, bits_a);
  const double hi_a = BreakpointTable::Upper(sym_a, bits_a);
  const double lo_b = BreakpointTable::Lower(sym_b, bits_b);
  const double hi_b = BreakpointTable::Upper(sym_b, bits_b);
  if (lo_a > hi_b) return lo_a - hi_b;
  if (lo_b > hi_a) return lo_b - hi_a;
  return 0.0;
}

// Gap between a full-cardinality record signature and a table entry region.
double EntryGap(const ISaxSignature& full_sig, const ISaxSignature& entry) {
  double acc = 0.0;
  for (size_t i = 0; i < entry.word_length(); ++i) {
    const uint8_t bits = entry.char_bits[i];
    if (bits == 0) continue;
    const uint16_t record_sym = static_cast<uint16_t>(
        full_sig.full_symbols[i] >> (full_sig.max_bits - bits));
    const double d = CharGap(record_sym, bits, entry.Symbol(i), bits);
    acc += d * d;
  }
  return acc;
}
}  // namespace

PartitionTable PartitionTable::FromTree(const IBTree& tree, double scale) {
  PartitionTable table;
  // Group leaf entries by cardinality vector for the per-group hash probes.
  std::map<std::vector<uint8_t>, size_t> group_index;
  tree.ForEachNode([&](const IBTree::Node& node) {
    if (!node.is_leaf() || node.parent == nullptr) return;
    Entry entry;
    entry.sig = node.sig;
    entry.pid = static_cast<PartitionId>(table.entries_.size());
    entry.est_count = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(node.count * scale)));
    auto [it, inserted] =
        group_index.try_emplace(node.sig.char_bits, table.groups_.size());
    if (inserted) {
      Group group;
      group.char_bits = node.sig.char_bits;
      table.groups_.push_back(std::move(group));
    }
    table.groups_[it->second].keys.emplace(node.sig.Key(), entry.pid);
    table.entries_.push_back(std::move(entry));
  });
  table.num_partitions_ = static_cast<uint32_t>(table.entries_.size());
  return table;
}

void PartitionTable::PackInto(uint64_t capacity) {
  std::vector<uint64_t> remaining;  // free space per open partition
  std::vector<PartitionId> remap(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    const uint64_t size = entries_[i].est_count;
    uint32_t bin = static_cast<uint32_t>(remaining.size());
    for (uint32_t b = 0; b < remaining.size(); ++b) {
      if (remaining[b] >= size) {
        bin = b;
        break;
      }
    }
    if (bin == remaining.size()) {
      remaining.push_back(size >= capacity ? 0 : capacity - size);
    } else {
      remaining[bin] -= size;
    }
    remap[entries_[i].pid] = bin;
    entries_[i].pid = bin;
  }
  for (Group& group : groups_) {
    for (auto& [key, pid] : group.keys) pid = remap[pid];
  }
  num_partitions_ = static_cast<uint32_t>(remaining.size());
}

PartitionId PartitionTable::Lookup(const ISaxSignature& full_sig) const {
  // Honest DPiSAX matching: for each distinct cardinality vector in the
  // table, truncate the record's signature accordingly and probe the hash.
  // This repeated truncate-and-probe is the bottleneck §II-C identifies.
  ISaxSignature probe = full_sig;
  for (const Group& group : groups_) {
    probe.char_bits = group.char_bits;
    auto it = group.keys.find(probe.Key());
    if (it != group.keys.end()) return it->second;
  }
  // Signature outside every sampled cell: route to the nearest entry.
  PartitionId best = kInvalidPartition;
  double best_gap = std::numeric_limits<double>::infinity();
  for (const Entry& entry : entries_) {
    const double gap = EntryGap(full_sig, entry.sig);
    if (gap < best_gap) {
      best_gap = gap;
      best = entry.pid;
    }
  }
  return best;
}

size_t PartitionTable::SerializedSize() const {
  // Each entry stores per-char (bits, symbol) plus pid — the "partition
  // table" the paper sizes in Fig. 13(a).
  size_t bytes = 0;
  for (const Entry& entry : entries_) {
    bytes += entry.sig.word_length() * 3 + sizeof(PartitionId) + sizeof(uint64_t);
  }
  return bytes;
}

Result<DPiSaxIndex> DPiSaxIndex::Build(std::shared_ptr<Cluster> cluster,
                                       const BlockStore& input,
                                       const std::string& partition_dir,
                                       const DPiSaxConfig& config,
                                       BuildTimings* timings) {
  TARDIS_RETURN_NOT_OK(config.Validate());
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (input.series_length() % config.word_length != 0) {
    return Status::InvalidArgument(
        "series length must be a multiple of the word length");
  }

  Stopwatch sw;
  // --- Sample: workers convert a block sample to iSAX signatures ---
  Rng rng(config.seed);
  const std::vector<uint32_t> blocks =
      input.SampleBlocks(config.sampling_percent, &rng);
  const uint32_t w = config.word_length;
  using SigVec = std::vector<ISaxSignature>;
  TARDIS_ASSIGN_OR_RETURN(
      std::vector<SigVec> per_block,
      (MapBlocks<SigVec>(
          *cluster, input, blocks,
          [&](uint32_t, const std::vector<Record>& records) -> Result<SigVec> {
            SigVec sigs;
            sigs.reserve(records.size());
            std::vector<double> paa(w);
            for (const auto& rec : records) {
              PaaInto(rec.values, w, paa.data());
              sigs.push_back(ISaxFromPaa(paa, config.max_bits));
            }
            return sigs;
          })));
  size_t sampled = 0;
  for (const auto& sigs : per_block) sampled += sigs.size();
  if (sampled == 0) return Status::InvalidArgument("empty sample");
  const double fraction =
      static_cast<double>(sampled) / static_cast<double>(input.num_records());
  if (timings) timings->sample_seconds = sw.ElapsedSeconds();
  sw.Restart();

  // --- Master-side iBT over the sampled signatures, bulk-loaded per
  // iSAX 2.0's mechanism. The split threshold is the partition capacity
  // scaled down to the sample size, so leaf cells correspond to ~G-MaxSize
  // records of the full dataset.
  const uint64_t sample_threshold = std::max<uint64_t>(
      1, static_cast<uint64_t>(config.g_max_size * fraction));
  std::vector<std::pair<ISaxSignature, uint32_t>> sample_entries;
  sample_entries.reserve(sampled);
  uint32_t idx = 0;
  for (auto& sigs : per_block) {
    for (auto& sig : sigs) sample_entries.emplace_back(std::move(sig), idx++);
  }
  IBTree global_tree =
      IBTree::BulkLoad(w, config.max_bits, config.split_policy,
                       sample_threshold, std::move(sample_entries));
  if (timings) timings->tree_seconds = sw.ElapsedSeconds();
  sw.Restart();

  PartitionTable table = PartitionTable::FromTree(global_tree, 1.0 / fraction);
  if (table.num_partitions() == 0) {
    return Status::Internal("empty partition table");
  }
  table.PackInto(config.g_max_size);
  if (timings) timings->table_seconds = sw.ElapsedSeconds();
  sw.Restart();

  TARDIS_ASSIGN_OR_RETURN(
      PartitionStore pstore,
      PartitionStore::Open(partition_dir, input.series_length()));
  DPiSaxIndex index(cluster, config, std::move(table), std::move(pstore),
                    input.series_length());

  // --- Shuffle: every record pays conversion at the large initial
  // cardinality plus the table-matching cost.
  const PartitionTable& tbl = index.table_;
  const uint8_t max_bits = config.max_bits;
  auto partitioner = [&tbl, w, max_bits](const Record& rec) -> PartitionId {
    thread_local std::vector<double> paa;
    paa.resize(w);
    PaaInto(rec.values, w, paa.data());
    return tbl.Lookup(ISaxFromPaa(paa, max_bits));
  };
  TARDIS_ASSIGN_OR_RETURN(
      index.partition_counts_,
      ShuffleToPartitions(*cluster, input, index.num_partitions(), partitioner,
                          *index.partitions_));
  if (timings) timings->shuffle_seconds = sw.ElapsedSeconds();
  sw.Restart();

  // --- Local iBTs (mapPartitions), clustered rewrite + sidecar.
  TARDIS_RETURN_NOT_OK(MapPartitions(
      *cluster, index.num_partitions(), [&](PartitionId pid) -> Status {
        TARDIS_ASSIGN_OR_RETURN(std::vector<Record> records,
                                index.partitions_->ReadPartition(pid));
        std::vector<std::pair<ISaxSignature, uint32_t>> entries;
        entries.reserve(records.size());
        std::vector<double> paa(w);
        for (uint32_t i = 0; i < records.size(); ++i) {
          PaaInto(records[i].values, w, paa.data());
          entries.emplace_back(ISaxFromPaa(paa, config.max_bits), i);
        }
        IBTree local =
            IBTree::BulkLoad(w, config.max_bits, config.split_policy,
                             config.l_max_size, std::move(entries));
        std::vector<uint32_t> order;
        order.reserve(records.size());
        local.AssignClusteredRanges(&order);
        std::vector<Record> clustered;
        clustered.reserve(records.size());
        for (uint32_t j : order) clustered.push_back(std::move(records[j]));
        TARDIS_RETURN_NOT_OK(index.partitions_->WritePartition(pid, clustered));
        std::string tree_bytes;
        local.EncodeTo(&tree_bytes);
        return index.partitions_->WriteSidecar(pid, kTreeSidecar, tree_bytes);
      }));
  if (timings) timings->local_build_seconds = sw.ElapsedSeconds();
  return index;
}

Result<DPiSaxIndex::SizeInfo> DPiSaxIndex::ComputeSizeInfo() const {
  SizeInfo info;
  info.global_bytes = table_.SerializedSize();
  for (uint32_t pid = 0; pid < num_partitions(); ++pid) {
    TARDIS_ASSIGN_OR_RETURN(uint64_t bytes,
                            partitions_->SidecarBytes(pid, kTreeSidecar));
    info.local_tree_bytes += bytes;
  }
  return info;
}

Status DPiSaxIndex::PrepareQuery(const TimeSeries& query,
                                 std::vector<double>* paa,
                                 ISaxSignature* sig) const {
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length differs from indexed series");
  }
  paa->resize(config_.word_length);
  PaaInto(query, config_.word_length, paa->data());
  *sig = ISaxFromPaa(*paa, config_.max_bits);
  return Status::OK();
}

Result<std::vector<Record>> DPiSaxIndex::LoadPartition(PartitionId pid) const {
  return partitions_->ReadPartition(pid);
}

Result<PartitionCache::Value> DPiSaxIndex::LoadPartitionShared(
    PartitionId pid) const {
  if (cache_ == nullptr) {
    TARDIS_ASSIGN_OR_RETURN(PartitionArena arena,
                            partitions_->ReadPartitionArena(pid));
    return std::make_shared<const PartitionArena>(std::move(arena));
  }
  return cache_->GetOrLoad(
      pid, [this, pid] { return partitions_->ReadPartitionArena(pid); });
}

Result<IBTree> DPiSaxIndex::LoadLocalTree(PartitionId pid) const {
  TARDIS_ASSIGN_OR_RETURN(std::string bytes,
                          partitions_->ReadSidecar(pid, kTreeSidecar));
  return IBTree::Decode(bytes);
}

Result<std::vector<RecordId>> DPiSaxIndex::ExactMatch(
    const TimeSeries& query, ExactMatchStats* stats) const {
  std::vector<double> paa;
  ISaxSignature sig;
  TARDIS_RETURN_NOT_OK(PrepareQuery(query, &paa, &sig));
  const PartitionId pid = table_.Lookup(sig);
  if (pid == kInvalidPartition) {
    if (stats) stats->descent_failed = true;
    return std::vector<RecordId>{};
  }
  TARDIS_ASSIGN_OR_RETURN(IBTree local, LoadLocalTree(pid));
  TARDIS_ASSIGN_OR_RETURN(PartitionCache::Value loaded,
                          LoadPartitionShared(pid));
  const PartitionArena& arena = *loaded;
  if (stats) stats->partitions_loaded = 1;
  const IBTree::Node* leaf = local.DescendToLeaf(sig);
  if (leaf == local.root()) {
    // No first-layer cell for this signature: provably absent.
    if (stats) stats->descent_failed = true;
    return std::vector<RecordId>{};
  }
  std::vector<RecordId> result;
  const uint32_t end = leaf->range_start + leaf->range_len;
  for (uint32_t i = leaf->range_start; i < end && i < arena.num_records();
       ++i) {
    if (stats) ++stats->candidates;
    if (std::equal(query.begin(), query.end(), arena.values(i))) {
      result.push_back(arena.rid(i));
    }
  }
  return result;
}

Result<std::vector<Neighbor>> DPiSaxIndex::KnnApproximate(
    const TimeSeries& query, uint32_t k, KnnStats* stats) const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  std::vector<double> paa;
  ISaxSignature sig;
  TARDIS_RETURN_NOT_OK(PrepareQuery(query, &paa, &sig));
  const PartitionId pid = table_.Lookup(sig);
  if (pid == kInvalidPartition) return Status::Internal("no partition");
  TARDIS_ASSIGN_OR_RETURN(IBTree local, LoadLocalTree(pid));
  TARDIS_ASSIGN_OR_RETURN(PartitionCache::Value loaded,
                          LoadPartitionShared(pid));
  const PartitionArena& arena = *loaded;
  if (stats) stats->partitions_loaded = 1;

  // Target node: the query's leaf, widened to the nearest ancestor holding
  // at least k entries (the baseline analogue of Target Node Access).
  const IBTree::Node* node = local.DescendToLeaf(sig);
  while (node->parent != nullptr && node->count < k) node = node->parent;
  if (stats) {
    stats->target_node_level = node->depth;
    stats->candidates = node->range_len;
  }

  const uint32_t end = std::min<uint32_t>(node->range_start + node->range_len,
                                          arena.num_records());
  std::vector<Neighbor> candidates;
  candidates.reserve(end - node->range_start);
  if (config_.clustered) {
    for (uint32_t i = node->range_start; i < end; ++i) {
      candidates.push_back(
          {std::sqrt(SquaredEuclidean(query.data(), arena.values(i),
                                      query.size())),
           arena.rid(i)});
    }
  } else {
    // Un-clustered DPiSAX: no refine phase — rank purely in signature space
    // (lower-bound distance between the query PAA and each record's
    // signature), reproducing the §II-D accuracy degradation.
    std::vector<double> rec_paa(config_.word_length);
    for (uint32_t i = node->range_start; i < end; ++i) {
      PaaInto(arena.values(i), arena.series_length(), config_.word_length,
              rec_paa.data());
      const ISaxSignature rec_sig = ISaxFromPaa(rec_paa, config_.max_bits);
      candidates.push_back(
          {MindistPaaToISax(paa, rec_sig, query.size()), arena.rid(i)});
    }
  }
  const size_t take = std::min<size_t>(k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + take,
                    candidates.end());
  candidates.resize(take);
  return candidates;
}

}  // namespace tardis

// Clang Thread Safety Analysis support (DESIGN.md §11, docs/STATIC_ANALYSIS.md).
//
// Every lock-protected member in the runtime is annotated with
// TARDIS_GUARDED_BY, every lock-requiring function with TARDIS_REQUIRES, and
// the whole tree compiles under `-Wthread-safety -Werror=thread-safety`
// (CMake option TARDIS_THREAD_SAFETY, Clang only), so a lock-discipline
// violation — touching a guarded member without its mutex, releasing a lock
// twice, calling a REQUIRES function unlocked — is a *build failure*, not a
// TSan roll of the dice. Under GCC the attributes expand to nothing and the
// wrappers cost exactly what std::mutex / std::lock_guard cost.
//
// The analysis only sees annotated capabilities, so the raw standard types
// are banned outside this header (enforced by tools/lint/tardis_lint.py):
// use tardis::Mutex, tardis::MutexLock, and tardis::CondVar instead of
// std::mutex, std::lock_guard/std::unique_lock, and std::condition_variable.
//
// Condition-variable predicates: prefer the explicit loop form
//     while (!ready_) cv_.Wait(lock);
// over Wait(lock, pred) when the predicate reads guarded members — Clang
// analyzes lambda bodies as separate functions that do not inherit the
// caller's capability set, so a guarded read inside a predicate lambda
// would (falsely) warn. The loop body runs in the scope that holds the lock.

#ifndef TARDIS_COMMON_THREAD_ANNOTATIONS_H_
#define TARDIS_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

// Attribute spelling: active under Clang (and any compiler advertising the
// capability via __has_attribute), a no-op elsewhere. GCC compiles the
// annotated tree unchanged; only Clang checks it.
#if defined(__clang__) && defined(__has_attribute)
#define TARDIS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define TARDIS_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// On a data member: may only be read or written while holding `x`.
#define TARDIS_GUARDED_BY(x) TARDIS_THREAD_ANNOTATION_(guarded_by(x))
// On a pointer member: the *pointee* is protected by `x` (the pointer
// itself is not).
#define TARDIS_PT_GUARDED_BY(x) TARDIS_THREAD_ANNOTATION_(pt_guarded_by(x))
// On a function: caller must hold the listed capabilities (exclusively /
// shared) for the duration of the call.
#define TARDIS_REQUIRES(...) \
  TARDIS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define TARDIS_REQUIRES_SHARED(...) \
  TARDIS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
// On a function: acquires / releases the listed capabilities. With no
// argument on a member of a capability class, refers to `this`.
#define TARDIS_ACQUIRE(...) \
  TARDIS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define TARDIS_RELEASE(...) \
  TARDIS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define TARDIS_TRY_ACQUIRE(...) \
  TARDIS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
// On a function: caller must NOT hold the listed capabilities (deadlock
// guard for functions that acquire them internally).
#define TARDIS_EXCLUDES(...) \
  TARDIS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// Lock-ordering declarations between mutex members.
#define TARDIS_ACQUIRED_BEFORE(...) \
  TARDIS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define TARDIS_ACQUIRED_AFTER(...) \
  TARDIS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
// On a function returning a reference to a capability.
#define TARDIS_RETURN_CAPABILITY(x) \
  TARDIS_THREAD_ANNOTATION_(lock_returned(x))
// Escape hatch: disables the analysis for one function. Every use must carry
// a comment explaining why the discipline holds anyway.
#define TARDIS_NO_THREAD_SAFETY_ANALYSIS \
  TARDIS_THREAD_ANNOTATION_(no_thread_safety_analysis)
// Class-level markers for capability types and scoped (RAII) capabilities.
#define TARDIS_CAPABILITY(x) TARDIS_THREAD_ANNOTATION_(capability(x))
#define TARDIS_SCOPED_CAPABILITY TARDIS_THREAD_ANNOTATION_(scoped_lockable)

namespace tardis {

class CondVar;

// std::mutex with a declared capability, so members can be TARDIS_GUARDED_BY
// it and functions TARDIS_REQUIRES it. Same layout cost as std::mutex.
class TARDIS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TARDIS_ACQUIRE() { mu_.lock(); }
  void Unlock() TARDIS_RELEASE() { mu_.unlock(); }
  bool TryLock() TARDIS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock over a tardis::Mutex — the annotated stand-in for both
// std::lock_guard (construct and forget) and std::unique_lock (the manual
// Unlock/Lock pair brackets a slow operation, e.g. running a cache loader
// outside the shard lock; CondVar waits take the whole MutexLock).
class TARDIS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TARDIS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() TARDIS_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Manual bracket for "unlock around slow work, re-lock after". The scoped
  // capability must be re-held when the MutexLock goes out of scope.
  void Unlock() TARDIS_RELEASE() { lock_.unlock(); }
  void Lock() TARDIS_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable taking MutexLock directly. Wait atomically releases and
// re-acquires the lock; from the analysis' point of view the capability is
// held across the call (the temporary release is invisible, which is sound:
// the caller re-holds it whenever Wait returns).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tardis

#endif  // TARDIS_COMMON_THREAD_ANNOTATIONS_H_

// Bounded task retry — the library's analogue of Spark's task re-execution.
//
// A RetryPolicy caps the number of attempts and the (exponential, bounded)
// backoff between them. RunWithRetry re-executes a callable while it fails
// with a *transient* status (I/O errors — including injected faults — and
// corruption, which in the fault model stands in for a torn read that a
// replica re-read would heal). Permanent errors (InvalidArgument, Internal,
// NotImplemented, ...) never retry. Callables passed to the retry helpers
// must be idempotent: the dataflow layer arranges its retry units so every
// re-executed body either has no side effects or overwrites atomically.

#ifndef TARDIS_COMMON_RETRY_H_
#define TARDIS_COMMON_RETRY_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/status.h"

namespace tardis {

struct RetryPolicy {
  // Total executions allowed per task, including the first (1 = no retries).
  uint32_t max_attempts = 3;
  // Backoff before retry r (1-based) is min(backoff_init_us << (r-1),
  // backoff_max_us) microseconds.
  uint32_t backoff_init_us = 200;
  uint32_t backoff_max_us = 20000;

  bool enabled() const { return max_attempts > 1; }

  Status Validate() const {
    if (max_attempts == 0) {
      return Status::InvalidArgument("retry max_attempts must be >= 1");
    }
    return Status::OK();
  }
};

// Per-job task accounting, surfaced next to ShuffleMetrics: what a Spark UI
// would show as tasks / attempts / retries / failures. Accumulates across
// calls so one struct can aggregate a multi-stage pipeline.
struct JobMetrics {
  uint64_t tasks = 0;         // logical tasks launched
  uint64_t attempts = 0;      // task executions, including retries
  uint64_t retries = 0;       // attempts beyond each task's first
  uint64_t failed_tasks = 0;  // tasks whose attempts were exhausted

  JobMetrics& operator+=(const JobMetrics& other) {
    tasks += other.tasks;
    attempts += other.attempts;
    retries += other.retries;
    failed_tasks += other.failed_tasks;
    return *this;
  }
};

// A status worth retrying: plausibly transient in the fault model.
inline bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kCorruption;
}

// A load failure a degraded-mode query may skip over (retryable errors plus
// NotFound, e.g. a partition whose file a failed node took with it).
inline bool IsDegradableLoadError(const Status& status) {
  return IsRetryableStatus(status) || status.code() == StatusCode::kNotFound;
}

inline uint32_t BackoffDelayUs(const RetryPolicy& policy, uint32_t retry) {
  if (retry == 0 || policy.backoff_init_us == 0) return 0;
  const uint32_t shift = std::min(retry - 1, 20u);
  const uint64_t delay = static_cast<uint64_t>(policy.backoff_init_us) << shift;
  return static_cast<uint32_t>(
      std::min<uint64_t>(delay, policy.backoff_max_us));
}

// Runs `fn` (returning Status) up to policy.max_attempts times, sleeping the
// bounded backoff between attempts. Returns the first success or the last
// failure. `metrics`, when non-null, is updated with the task/attempt/retry
// counts (and failed_tasks on exhaustion); updates are plain field writes —
// use one JobMetrics per thread or the atomic-counter overloads in callers
// that share one across workers.
template <typename Fn>
Status RunWithRetry(const RetryPolicy& policy, Fn&& fn,
                    JobMetrics* metrics = nullptr) {
  const uint32_t max_attempts = std::max(1u, policy.max_attempts);
  if (metrics != nullptr) ++metrics->tasks;
  Status st;
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      const uint32_t delay = BackoffDelayUs(policy, attempt);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
      if (metrics != nullptr) ++metrics->retries;
    }
    if (metrics != nullptr) ++metrics->attempts;
    st = fn();
    if (st.ok() || !IsRetryableStatus(st)) return st;
  }
  if (metrics != nullptr) ++metrics->failed_tasks;
  return st;
}

// Result<T> counterpart: retries transient failures, returns the first
// successful value or the last failure.
template <typename T, typename Fn>
Result<T> RunWithRetryResult(const RetryPolicy& policy, Fn&& fn,
                             JobMetrics* metrics = nullptr) {
  const uint32_t max_attempts = std::max(1u, policy.max_attempts);
  if (metrics != nullptr) ++metrics->tasks;
  Status last;
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      const uint32_t delay = BackoffDelayUs(policy, attempt);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
      if (metrics != nullptr) ++metrics->retries;
    }
    if (metrics != nullptr) ++metrics->attempts;
    Result<T> result = fn();
    if (result.ok() || !IsRetryableStatus(result.status())) return result;
    last = result.status();
  }
  if (metrics != nullptr) ++metrics->failed_tasks;
  return last;
}

}  // namespace tardis

#endif  // TARDIS_COMMON_RETRY_H_

// Bounded task retry — the library's analogue of Spark's task re-execution.
//
// A RetryPolicy caps the number of attempts and the (exponential, bounded)
// backoff between them. RunWithRetry re-executes a callable while it fails
// with a *transient* status (I/O errors — including injected faults — and
// corruption, which in the fault model stands in for a torn read that a
// replica re-read would heal). Permanent errors (InvalidArgument, Internal,
// NotImplemented, ...) never retry. Callables passed to the retry helpers
// must be idempotent: the dataflow layer arranges its retry units so every
// re-executed body either has no side effects or overwrites atomically.

#ifndef TARDIS_COMMON_RETRY_H_
#define TARDIS_COMMON_RETRY_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/status.h"

namespace tardis {

struct RetryPolicy {
  // Total executions allowed per task, including the first (1 = no retries).
  uint32_t max_attempts = 3;
  // Backoff before retry r (1-based) is min(backoff_init_us << (r-1),
  // backoff_max_us) microseconds.
  uint32_t backoff_init_us = 200;
  uint32_t backoff_max_us = 20000;
  // Decorrelated jitter (on by default): retry r instead sleeps a uniform
  // draw from [backoff_init_us, min(backoff_max_us, 3 * previous_delay)], so
  // a wave of tasks that failed together (one slow device, one injected
  // fault burst) spreads its retries out instead of re-colliding every
  // backoff period. Delays only ever affect timing, never results.
  bool decorrelated_jitter = true;
  // Seed for the jitter RNG. 0 (default) derives a distinct nonce per
  // RunWithRetry call — what production wants, since identical sequences
  // across tasks are exactly the synchronization jitter exists to break. A
  // non-zero seed makes the delay sequence of a single retry loop exactly
  // reproducible (tests).
  uint64_t jitter_seed = 0;

  bool enabled() const { return max_attempts > 1; }

  Status Validate() const {
    if (max_attempts == 0) {
      return Status::InvalidArgument("retry max_attempts must be >= 1");
    }
    return Status::OK();
  }
};

// Per-job task accounting, surfaced next to ShuffleMetrics: what a Spark UI
// would show as tasks / attempts / retries / failures. Accumulates across
// calls so one struct can aggregate a multi-stage pipeline.
struct JobMetrics {
  uint64_t tasks = 0;         // logical tasks launched
  uint64_t attempts = 0;      // task executions, including retries
  uint64_t retries = 0;       // attempts beyond each task's first
  uint64_t failed_tasks = 0;  // tasks whose attempts were exhausted

  JobMetrics& operator+=(const JobMetrics& other) {
    tasks += other.tasks;
    attempts += other.attempts;
    retries += other.retries;
    failed_tasks += other.failed_tasks;
    return *this;
  }
};

// A status worth retrying: plausibly transient in the fault model.
inline bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kCorruption;
}

// A load failure a degraded-mode query may skip over (retryable errors plus
// NotFound, e.g. a partition whose file a failed node took with it).
inline bool IsDegradableLoadError(const Status& status) {
  return IsRetryableStatus(status) || status.code() == StatusCode::kNotFound;
}

inline uint32_t BackoffDelayUs(const RetryPolicy& policy, uint32_t retry) {
  if (retry == 0 || policy.backoff_init_us == 0) return 0;
  const uint32_t shift = std::min(retry - 1, 20u);
  const uint64_t delay = static_cast<uint64_t>(policy.backoff_init_us) << shift;
  return static_cast<uint32_t>(
      std::min<uint64_t>(delay, policy.backoff_max_us));
}

// Per-retry-loop jitter state: a SplitMix64 stream plus the previous delay
// the decorrelated formula feeds forward.
struct BackoffState {
  uint64_t rng = 0;
  uint64_t prev_us = 0;

  uint64_t Next() {
    rng += 0x9E3779B97F4A7C15ull;
    uint64_t x = rng;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }
};

// Initializes the jitter stream for one retry loop: the policy's seed when
// set, otherwise a process-wide nonce so concurrent loops draw independent
// sequences.
inline BackoffState MakeBackoffState(const RetryPolicy& policy) {
  BackoffState state;
  if (policy.jitter_seed != 0) {
    state.rng = policy.jitter_seed;
  } else {
    static std::atomic<uint64_t> nonce{0x243F6A8885A308D3ull};
    state.rng = nonce.fetch_add(0x9E3779B97F4A7C15ull,
                                std::memory_order_relaxed);
  }
  return state;
}

// Delay before retry `retry` (1-based): the deterministic exponential when
// jitter is off, otherwise the AWS-style decorrelated draw
// uniform[init, min(cap, 3 * prev)]. Always 0 for retry 0 or a zero init,
// and never above backoff_max_us.
inline uint32_t NextBackoffDelayUs(const RetryPolicy& policy,
                                   BackoffState* state, uint32_t retry) {
  if (retry == 0 || policy.backoff_init_us == 0) return 0;
  if (!policy.decorrelated_jitter) return BackoffDelayUs(policy, retry);
  const uint64_t lo = policy.backoff_init_us;
  const uint64_t cap = std::max<uint64_t>(lo, policy.backoff_max_us);
  const uint64_t prev = state->prev_us > 0 ? state->prev_us : lo;
  const uint64_t hi = std::max<uint64_t>(lo, std::min<uint64_t>(cap, prev * 3));
  const uint64_t delay = lo + state->Next() % (hi - lo + 1);
  state->prev_us = delay;
  return static_cast<uint32_t>(delay);
}

// Runs `fn` (returning Status) up to policy.max_attempts times, sleeping the
// bounded backoff between attempts. Returns the first success or the last
// failure. `metrics`, when non-null, is updated with the task/attempt/retry
// counts (and failed_tasks on exhaustion); updates are plain field writes —
// use one JobMetrics per thread or the atomic-counter overloads in callers
// that share one across workers.
template <typename Fn>
Status RunWithRetry(const RetryPolicy& policy, Fn&& fn,
                    JobMetrics* metrics = nullptr) {
  const uint32_t max_attempts = std::max(1u, policy.max_attempts);
  if (metrics != nullptr) ++metrics->tasks;
  BackoffState backoff = MakeBackoffState(policy);
  Status st;
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      const uint32_t delay = NextBackoffDelayUs(policy, &backoff, attempt);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
      if (metrics != nullptr) ++metrics->retries;
    }
    if (metrics != nullptr) ++metrics->attempts;
    st = fn();
    if (st.ok() || !IsRetryableStatus(st)) return st;
  }
  if (metrics != nullptr) ++metrics->failed_tasks;
  return st;
}

// Result<T> counterpart: retries transient failures, returns the first
// successful value or the last failure.
template <typename T, typename Fn>
Result<T> RunWithRetryResult(const RetryPolicy& policy, Fn&& fn,
                             JobMetrics* metrics = nullptr) {
  const uint32_t max_attempts = std::max(1u, policy.max_attempts);
  if (metrics != nullptr) ++metrics->tasks;
  BackoffState backoff = MakeBackoffState(policy);
  Status last;
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      const uint32_t delay = NextBackoffDelayUs(policy, &backoff, attempt);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
      if (metrics != nullptr) ++metrics->retries;
    }
    if (metrics != nullptr) ++metrics->attempts;
    Result<T> result = fn();
    if (result.ok() || !IsRetryableStatus(result.status())) return result;
    last = result.status();
  }
  if (metrics != nullptr) ++metrics->failed_tasks;
  return last;
}

}  // namespace tardis

#endif  // TARDIS_COMMON_RETRY_H_

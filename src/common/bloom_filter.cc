#include "common/bloom_filter.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace tardis {

namespace {
// 64-bit FNV-1a as the base hash; decorrelated halves come from xor-folding
// with splitmix-style finalizers.
uint64_t Fnv1a(std::string_view key, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Finalize(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

BloomFilter::BloomFilter(size_t expected_items, double false_positive_rate) {
  assert(false_positive_rate > 0.0 && false_positive_rate < 1.0);
  expected_items = std::max<size_t>(expected_items, 1);
  const double ln2 = 0.6931471805599453;
  const double m =
      -static_cast<double>(expected_items) * std::log(false_positive_rate) /
      (ln2 * ln2);
  num_bits_ = std::max<size_t>(64, static_cast<size_t>(std::ceil(m)));
  num_bits_ = (num_bits_ + 63) / 64 * 64;
  const double k = ln2 * static_cast<double>(num_bits_) / expected_items;
  num_hashes_ = std::max<uint32_t>(1, static_cast<uint32_t>(std::round(k)));
  num_hashes_ = std::min<uint32_t>(num_hashes_, 30);
  bits_.assign(num_bits_ / 64, 0);
}

BloomFilter::BloomFilter(size_t num_bits, uint32_t num_hashes)
    : num_bits_((std::max<size_t>(num_bits, 64) + 63) / 64 * 64),
      num_hashes_(std::max<uint32_t>(num_hashes, 1)) {
  bits_.assign(num_bits_ / 64, 0);
}

void BloomFilter::HashKey(std::string_view key, uint64_t* h1, uint64_t* h2) {
  *h1 = Finalize(Fnv1a(key, 0x9e3779b97f4a7c15ULL));
  *h2 = Finalize(Fnv1a(key, 0xc2b2ae3d27d4eb4fULL)) | 1;  // odd => full cycle
}

void BloomFilter::Add(std::string_view key) {
  uint64_t h1, h2;
  HashKey(key, &h1, &h2);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % num_bits_;
    bits_[bit >> 6] |= (1ULL << (bit & 63));
  }
  ++inserted_;
}

bool BloomFilter::MayContain(std::string_view key) const {
  uint64_t h1, h2;
  HashKey(key, &h1, &h2);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % num_bits_;
    if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::EncodeTo(std::string* out) const {
  uint64_t header[2] = {static_cast<uint64_t>(num_bits_),
                        (static_cast<uint64_t>(num_hashes_) << 32) |
                            static_cast<uint32_t>(inserted_)};
  out->append(reinterpret_cast<const char*>(header), sizeof(header));
  out->append(reinterpret_cast<const char*>(bits_.data()),
              bits_.size() * sizeof(uint64_t));
}

Result<BloomFilter> BloomFilter::Decode(std::string_view in) {
  if (in.size() < 16) return Status::Corruption("bloom filter: short header");
  uint64_t header[2];
  std::memcpy(header, in.data(), sizeof(header));
  const size_t num_bits = header[0];
  const uint32_t num_hashes = static_cast<uint32_t>(header[1] >> 32);
  const uint32_t inserted = static_cast<uint32_t>(header[1] & 0xffffffffu);
  if (num_bits % 64 != 0 || num_bits == 0 || num_hashes == 0) {
    return Status::Corruption("bloom filter: bad geometry");
  }
  const size_t payload = num_bits / 64 * sizeof(uint64_t);
  if (in.size() != 16 + payload) {
    return Status::Corruption("bloom filter: size mismatch");
  }
  BloomFilter bf(num_bits, num_hashes);
  std::memcpy(bf.bits_.data(), in.data() + 16, payload);
  bf.inserted_ = inserted;
  return bf;
}

}  // namespace tardis

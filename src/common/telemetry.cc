#include "common/telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/file_util.h"

namespace tardis {
namespace telemetry {

namespace {

struct Switches {
  std::atomic<bool> metrics{false};
  std::atomic<bool> trace{false};
};

Switches& GlobalSwitches() {
  // Env is parsed exactly once, when the first instrumentation site asks.
  static Switches* s = [] {
    auto* sw = new Switches();
    const char* env = std::getenv("TARDIS_TRACE");
    if (env != nullptr && env[0] != '\0' && std::string(env) != "0") {
      sw->metrics.store(true, std::memory_order_relaxed);
      sw->trace.store(true, std::memory_order_relaxed);
    }
    return sw;
  }();
  return *s;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

thread_local uint32_t t_depth = 0;

// Renders a quantile estimate as a compact JSON number (no trailing zeros,
// so the exporter output stays stable and human-readable).
void AppendCompactDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

void AppendHistogramJson(std::string* out, const Histogram& h) {
  out->append("{\"count\": ");
  out->append(std::to_string(h.Count()));
  out->append(", \"sum\": ");
  out->append(std::to_string(h.Sum()));
  out->append(", \"p50\": ");
  AppendCompactDouble(out, h.ValueAtQuantile(0.5));
  out->append(", \"p99\": ");
  AppendCompactDouble(out, h.ValueAtQuantile(0.99));
  out->append(", \"p999\": ");
  AppendCompactDouble(out, h.ValueAtQuantile(0.999));
  out->append(", \"buckets\": [");
  bool first = true;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    const uint64_t n = h.BucketCount(i);
    if (n == 0) continue;
    if (!first) out->append(", ");
    first = false;
    out->append("[");
    out->append(std::to_string(Histogram::BucketLowerBound(i)));
    out->append(", ");
    out->append(std::to_string(n));
    out->append("]");
  }
  out->append("]}");
}

void AppendSpanAttrsJson(std::string* out, const SpanRecord& rec) {
  out->append("{");
  for (size_t i = 0; i < rec.attrs.size(); ++i) {
    if (i != 0) out->append(", ");
    out->append("\"");
    out->append(JsonEscape(rec.attrs[i].first));
    out->append("\": ");
    out->append(rec.attrs[i].second);
  }
  out->append("}");
}

}  // namespace

double Histogram::ValueAtQuantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = BucketCount(i);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  // 1-based rank of the requested quantile within the observed samples.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      // Bucket 0 holds exactly the value 0; the last bucket is unbounded, so
      // cap the interpolation at twice its lower edge.
      const double hi = i == 0 ? 0.0
                       : i == kNumBuckets - 1
                           ? lo * 2.0
                           : static_cast<double>(BucketLowerBound(i + 1));
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    seen += counts[i];
  }
  return static_cast<double>(BucketLowerBound(kNumBuckets - 1)) * 2.0;
}

bool Enabled() {
  return GlobalSwitches().metrics.load(std::memory_order_relaxed);
}

void SetEnabled(bool on) {
  GlobalSwitches().metrics.store(on, std::memory_order_relaxed);
}

bool TraceEnabled() {
  return GlobalSwitches().trace.load(std::memory_order_relaxed);
}

void SetTraceEnabled(bool on) {
  GlobalSwitches().trace.store(on, std::memory_order_relaxed);
  if (on) SetEnabled(true);
}

uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\t':
        out.append("\\t");
        break;
      case '\r':
        out.append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SpanRecord / ScopedSpan.
// ---------------------------------------------------------------------------

std::string SpanRecord::Attr(std::string_view key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return "";
}

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!TraceEnabled()) return;
  active_ = true;
  rec_.name.assign(name.data(), name.size());
  rec_.tid = ThreadIndex();
  rec_.depth = t_depth++;
  rec_.start_us = NowMicros();
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --t_depth;
  rec_.dur_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  Registry::Global().RecordSpan(std::move(rec_));
}

void ScopedSpan::AddAttr(std::string_view key, uint64_t value) {
  if (!active_) return;
  rec_.attrs.emplace_back(std::string(key), std::to_string(value));
}

void ScopedSpan::AddAttr(std::string_view key, std::string_view value) {
  if (!active_) return;
  rec_.attrs.emplace_back(std::string(key),
                          "\"" + JsonEscape(value) + "\"");
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_shared<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_shared<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_shared<Histogram>();
  return *slot;
}

void Registry::RegisterCounter(const std::string& name,
                               std::shared_ptr<Counter> c) {
  MutexLock lock(mu_);
  counters_[name] = std::move(c);
}

void Registry::RegisterGauge(const std::string& name,
                             std::shared_ptr<Gauge> g) {
  MutexLock lock(mu_);
  gauges_[name] = std::move(g);
}

void Registry::RecordSpan(SpanRecord rec) {
  MutexLock lock(span_mu_);
  if (spans_.size() >= kMaxSpans) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(rec));
}

std::vector<SpanRecord> Registry::SnapshotSpans() const {
  MutexLock lock(span_mu_);
  return spans_;
}

void Registry::ClearSpans() {
  MutexLock lock(span_mu_);
  spans_.clear();
  dropped_spans_.store(0, std::memory_order_relaxed);
}

std::string Registry::DumpJson() const {
  // Copy the metric pointers out so JSON rendering does not hold mu_ while
  // reading atomics (metric objects outlive the registry entries).
  std::map<std::string, std::shared_ptr<Counter>> counters;
  std::map<std::string, std::shared_ptr<Gauge>> gauges;
  std::map<std::string, std::shared_ptr<Histogram>> histograms;
  {
    MutexLock lock(mu_);
    counters = counters_;
    gauges = gauges_;
    histograms = histograms_;
  }
  std::string out;
  out.append("{\n  \"counters\": {");
  bool first = true;
  for (const auto& [name, c] : counters) {
    if (!first) out.append(",");
    first = false;
    out.append("\n    \"");
    out.append(JsonEscape(name));
    out.append("\": ");
    out.append(std::to_string(c->Value()));
  }
  out.append(first ? "},\n" : "\n  },\n");

  out.append("  \"gauges\": {");
  first = true;
  for (const auto& [name, g] : gauges) {
    if (!first) out.append(",");
    first = false;
    out.append("\n    \"");
    out.append(JsonEscape(name));
    out.append("\": ");
    out.append(std::to_string(g->Value()));
  }
  out.append(first ? "},\n" : "\n  },\n");

  out.append("  \"histograms\": {");
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.append(",");
    first = false;
    out.append("\n    \"");
    out.append(JsonEscape(name));
    out.append("\": ");
    AppendHistogramJson(&out, *h);
  }
  out.append(first ? "},\n" : "\n  },\n");

  const std::vector<SpanRecord> spans = SnapshotSpans();
  out.append("  \"spans\": {\"dropped\": ");
  out.append(std::to_string(dropped_spans()));
  out.append(", \"events\": [");
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& rec = spans[i];
    if (i != 0) out.append(",");
    out.append("\n    {\"name\": \"");
    out.append(JsonEscape(rec.name));
    out.append("\", \"ts_us\": ");
    out.append(std::to_string(rec.start_us));
    out.append(", \"dur_us\": ");
    out.append(std::to_string(rec.dur_us));
    out.append(", \"tid\": ");
    out.append(std::to_string(rec.tid));
    out.append(", \"depth\": ");
    out.append(std::to_string(rec.depth));
    out.append(", \"args\": ");
    AppendSpanAttrsJson(&out, rec);
    out.append("}");
  }
  out.append(spans.empty() ? "]}\n" : "\n  ]}\n");
  out.append("}\n");
  return out;
}

Status Registry::DumpJsonToFile(const std::string& path) const {
  return WriteFileAtomic(path, DumpJson());
}

std::string Registry::DumpTraceJson() const {
  const std::vector<SpanRecord> spans = SnapshotSpans();
  std::string out;
  out.append("{\"traceEvents\": [");
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& rec = spans[i];
    if (i != 0) out.append(",");
    out.append("\n  {\"name\": \"");
    out.append(JsonEscape(rec.name));
    out.append("\", \"ph\": \"X\", \"pid\": 0, \"tid\": ");
    out.append(std::to_string(rec.tid));
    out.append(", \"ts\": ");
    out.append(std::to_string(rec.start_us));
    out.append(", \"dur\": ");
    out.append(std::to_string(rec.dur_us));
    out.append(", \"args\": ");
    AppendSpanAttrsJson(&out, rec);
    out.append("}");
  }
  out.append(spans.empty() ? "]}\n" : "\n]}\n");
  return out;
}

Status Registry::DumpTraceJsonToFile(const std::string& path) const {
  return WriteFileAtomic(path, DumpTraceJson());
}

}  // namespace telemetry
}  // namespace tardis

// Minimal little-endian binary encoding helpers for the on-disk formats
// (block files, partition files, serialized indices).

#ifndef TARDIS_COMMON_SERDE_H_
#define TARDIS_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tardis {

// Appends fixed-width little-endian integers / floats to `dst`.
template <typename T>
inline void PutFixed(std::string* dst, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  dst->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed<uint32_t>(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

// A forward-only reader over a byte buffer. All Get* methods return false
// once the buffer is exhausted or malformed; callers convert that into a
// Status::Corruption.
class SliceReader {
 public:
  explicit SliceReader(std::string_view data) : data_(data) {}

  template <typename T>
  bool GetFixed(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data_.size() < sizeof(T)) return false;
    std::memcpy(out, data_.data(), sizeof(T));
    data_.remove_prefix(sizeof(T));
    return true;
  }

  bool GetLengthPrefixed(std::string* out) {
    uint32_t len;
    if (!GetFixed(&len)) return false;
    if (data_.size() < len) return false;
    out->assign(data_.data(), len);
    data_.remove_prefix(len);
    return true;
  }

  bool GetBytes(void* out, size_t n) {
    if (data_.size() < n) return false;
    std::memcpy(out, data_.data(), n);
    data_.remove_prefix(n);
    return true;
  }

  bool empty() const { return data_.empty(); }
  size_t remaining() const { return data_.size(); }

 private:
  std::string_view data_;
};

}  // namespace tardis

#endif  // TARDIS_COMMON_SERDE_H_

#include "common/file_util.h"

#include <filesystem>
#include <fstream>

#include "common/fault_injection.h"

namespace tardis {

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open for write: " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IOError("short write: " + tmp);
    out.flush();
    if (!out) return Status::IOError("flush failed: " + tmp);
  }
  // Crash-point hooks bracket the commit instant: the first half-step leaves
  // the temp file orphaned next to the unchanged target, the second leaves
  // the new content visible — the only two states a real torn write can
  // expose under the temp+rename discipline.
  MaybeCrashAtDurableStep("pre-rename", path);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("rename failed: " + path + ": " + ec.message());
  }
  MaybeCrashAtDurableStep("post-rename", path);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open for read: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::string bytes(static_cast<size_t>(size), '\0');
  in.read(bytes.data(), size);
  if (!in) return Status::IOError("short read: " + path);
  return bytes;
}

}  // namespace tardis

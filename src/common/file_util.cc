#include "common/file_util.h"

#include <filesystem>
#include <fstream>

namespace tardis {

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open for write: " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IOError("short write: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("rename failed: " + path + ": " + ec.message());
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open for read: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::string bytes(static_cast<size_t>(size), '\0');
  in.read(bytes.data(), size);
  if (!in) return Status::IOError("short read: " + path);
  return bytes;
}

}  // namespace tardis

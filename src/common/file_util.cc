#include "common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/fault_injection.h"

namespace tardis {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + ": " + path + ": " + std::strerror(errno);
}

// Full-buffer write with EINTR / short-write handling.
Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  size_t off = 0;
  while (off < n) {
    const ssize_t wrote = ::write(fd, data + off, n - off);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write failed", path));
    }
    off += static_cast<size_t>(wrote);
  }
  return Status::OK();
}

// fsyncs the directory containing `path`, making a rename inside it durable.
// A rename is only crash-proof once the directory entry itself has reached
// the disk; fsyncing the renamed file alone does not cover that.
Status SyncParentDir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd < 0) {
    return Status::IOError(ErrnoMessage("cannot open dir for fsync", dir));
  }
  if (::fsync(dirfd) != 0) {
    const Status st = Status::IOError(ErrnoMessage("dir fsync failed", dir));
    ::close(dirfd);
    return st;
  }
  if (::close(dirfd) != 0) {
    return Status::IOError(ErrnoMessage("dir close failed", dir));
  }
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open for write", tmp));
  Status st = WriteAll(fd, bytes.data(), bytes.size(), tmp);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  // Crash-point hooks bracket every durable transition, in order:
  //   pre-fsync    temp bytes issued but not yet forced to disk — a real
  //                power cut here may leave the temp empty or torn
  //   pre-rename   temp contents durable, target still the old file
  //   post-rename  new content visible, rename record not yet durable
  //   post-dirsync fully committed
  // Recovery must map each of the four states to exactly the old or the new
  // content, never a hybrid (tests/cli/crash_recovery_test.sh).
  MaybeCrashAtDurableStep("pre-fsync", path);
  if (::fsync(fd) != 0) {
    const Status sync_st = Status::IOError(ErrnoMessage("fsync failed", tmp));
    ::close(fd);
    return sync_st;
  }
  if (::close(fd) != 0) {
    return Status::IOError(ErrnoMessage("close failed", tmp));
  }
  MaybeCrashAtDurableStep("pre-rename", path);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("rename failed: " + path + ": " + ec.message());
  }
  MaybeCrashAtDurableStep("post-rename", path);
  TARDIS_RETURN_NOT_OK(SyncParentDir(path));
  MaybeCrashAtDurableStep("post-dirsync", path);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open for read: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::string bytes(static_cast<size_t>(size), '\0');
  in.read(bytes.data(), size);
  if (!in) return Status::IOError("short read: " + path);
  return bytes;
}

}  // namespace tardis

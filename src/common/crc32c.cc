#include "common/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TARDIS_CRC32C_X86 1
#include <nmmintrin.h>
#else
#define TARDIS_CRC32C_X86 0
#endif

namespace tardis {

namespace {

// ---------------------------------------------------------------------------
// Software fallback: slicing-by-8 over compile-time generated tables
// (polynomial 0x1EDC6F41, reflected 0x82F63B78).
// ---------------------------------------------------------------------------

constexpr uint32_t kPolyReflected = 0x82F63B78u;

struct Crc32cTables {
  uint32_t t[8][256];
};

constexpr Crc32cTables MakeTables() {
  Crc32cTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolyReflected : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int slice = 1; slice < 8; ++slice) {
      tables.t[slice][i] = (tables.t[slice - 1][i] >> 8) ^
                           tables.t[0][tables.t[slice - 1][i] & 0xff];
    }
  }
  return tables;
}

constexpr Crc32cTables kTables = MakeTables();

uint32_t ExtendSoftware(uint32_t crc, const uint8_t* p, size_t n) {
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xff];
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;
    crc = kTables.t[7][word & 0xff] ^ kTables.t[6][(word >> 8) & 0xff] ^
          kTables.t[5][(word >> 16) & 0xff] ^ kTables.t[4][(word >> 24) & 0xff] ^
          kTables.t[3][(word >> 32) & 0xff] ^ kTables.t[2][(word >> 40) & 0xff] ^
          kTables.t[1][(word >> 48) & 0xff] ^ kTables.t[0][(word >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xff];
    --n;
  }
  return ~crc;
}

#if TARDIS_CRC32C_X86

__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const uint8_t* p,
                                                          size_t n) {
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return ~crc;
}

bool DetectHardware() { return __builtin_cpu_supports("sse4.2"); }

#else

bool DetectHardware() { return false; }

#endif  // TARDIS_CRC32C_X86

const bool kHardware = DetectHardware();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
#if TARDIS_CRC32C_X86
  if (kHardware) return ExtendHardware(crc, p, n);
#endif
  return ExtendSoftware(crc, p, n);
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

bool Crc32cHardwareActive() { return kHardware; }

}  // namespace tardis

// CRC32C (Castagnoli) — the checksum HDFS and most storage systems use for
// block integrity. Storage layers frame their payloads with it so a flipped
// bit or torn write surfaces as Status::Corruption instead of silently
// decoded garbage (docs/RELIABILITY.md).
//
// The implementation dispatches at runtime: SSE4.2 hardware CRC when the CPU
// has it, a slicing-by-8 table fallback otherwise. Both produce identical
// values (the tests cross-check against the RFC 3720 vectors).

#ifndef TARDIS_COMMON_CRC32C_H_
#define TARDIS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tardis {

// CRC32C of `data` (initial CRC 0). The result is already finalized — feed
// it to Crc32cExtend to continue over more bytes.
uint32_t Crc32c(const void* data, size_t n);
inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(data.data(), data.size());
}

// Continues a CRC computed by Crc32c/Crc32cExtend over `n` more bytes, as if
// the buffers had been concatenated.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

// True when the SSE4.2 hardware path is active (informational).
bool Crc32cHardwareActive();

}  // namespace tardis

#endif  // TARDIS_COMMON_CRC32C_H_

// Shared file primitives implementing the repo's write discipline
// (DESIGN.md §7/§11): every durable file is produced by writing a temp file,
// fsyncing it, renaming it into place, and fsyncing the parent directory, so
// readers never observe a torn write, a crash leaves at worst an orphaned
// ".tmp", and a power cut cannot surface a "committed" file as empty or
// truncated (the rename is only durable once the directory entry itself has
// been forced to disk). tools/lint/tardis_lint.py bans direct file-writing
// primitives outside the storage layer — everything else funnels through
// WriteFileAtomic.

#ifndef TARDIS_COMMON_FILE_UTIL_H_
#define TARDIS_COMMON_FILE_UTIL_H_

#include <string>

#include "common/status.h"

namespace tardis {

// Writes `bytes` to `path` atomically and durably: the content lands in
// `path + ".tmp"` first, is fsynced, and is renamed over `path` only after
// the fsync succeeded; the parent directory is fsynced after the rename.
// Concurrent readers see either the old file or the complete new one, and
// once this returns OK the new content survives power loss.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

// Reads the entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace tardis

#endif  // TARDIS_COMMON_FILE_UTIL_H_

// Shared file primitives implementing the repo's write discipline
// (DESIGN.md §7/§11): every durable file is produced by writing a temp file
// and renaming it into place, so readers never observe a torn write and a
// crash leaves at worst an orphaned ".tmp". tools/lint/tardis_lint.py bans
// direct file-writing primitives outside the storage layer — everything
// else funnels through WriteFileAtomic.

#ifndef TARDIS_COMMON_FILE_UTIL_H_
#define TARDIS_COMMON_FILE_UTIL_H_

#include <string>

#include "common/status.h"

namespace tardis {

// Writes `bytes` to `path` atomically: the content lands in `path + ".tmp"`
// first and is renamed over `path` only after a successful full write, so
// concurrent readers see either the old file or the complete new one.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

// Reads the entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace tardis

#endif  // TARDIS_COMMON_FILE_UTIL_H_

// Process-wide metrics registry and lightweight span tracing — the repo's
// analogue of the Spark UI that the paper's evaluation (PAPER.md §VI) leans
// on for its per-stage cost breakdowns.
//
// Three metric kinds live in a named registry:
//   Counter   — monotonically increasing, sharded relaxed atomics so the hot
//               path is one fetch_add on a core-private cache line.
//   Gauge     — a settable signed value (resident bytes, pinned partitions).
//   Histogram — fixed power-of-two buckets over a uint64 domain (we use
//               microseconds); Observe is two relaxed fetch_adds.
//
// Spans record (name, start, duration, thread, depth, attrs) into a bounded
// in-memory buffer. They are the task-timeline analogue: the cluster layer
// opens one span per task attempt, queries open one per phase.
//
// Gating follows the fault_injection pattern: when telemetry is disabled
// (the default), every instrumentation site costs a single relaxed atomic
// load. Enable programmatically (telemetry::SetEnabled), via the CLI flags
// --metrics-json / --trace-json, or via TARDIS_TRACE=1 in the environment
// (parsed once, on first use). Counters wired into long-lived components
// (e.g. PartitionCache hit/miss) are always live — they are part of those
// components' contracts and cost the same as the atomics they replaced.

#ifndef TARDIS_COMMON_TELEMETRY_H_
#define TARDIS_COMMON_TELEMETRY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace tardis {
namespace telemetry {

// ---------------------------------------------------------------------------
// Enable switches.
// ---------------------------------------------------------------------------

// True when histogram/span instrumentation should run. Initialised from
// $TARDIS_TRACE on first use (any non-empty value other than "0" enables
// both metrics and tracing).
bool Enabled();
void SetEnabled(bool on);

// True when spans are being recorded (implies nothing about metrics; the
// CLI enables both for --trace-json and metrics only for --metrics-json).
bool TraceEnabled();
void SetTraceEnabled(bool on);

// Small dense id for the calling thread (0, 1, 2, ... in first-use order).
// Used as the worker id in task spans.
uint32_t ThreadIndex();

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta = 1) {
    shards_[ThreadIndex() & (kShards - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Power-of-two buckets: bucket 0 holds value 0, bucket i (i >= 1) holds
// [2^(i-1), 2^i), and the last bucket absorbs everything above. With 32
// buckets over microseconds the top finite bucket edge is ~2^30 us ≈ 18 min.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 32;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static size_t BucketIndex(uint64_t value) {
    if (value == 0) return 0;
    size_t bits = 0;
    while (value != 0) {
      ++bits;
      value >>= 1;
    }
    return bits < kNumBuckets ? bits : kNumBuckets - 1;
  }
  // Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }

  void Observe(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }
  void ObserveSeconds(double seconds) {
    if (seconds < 0) seconds = 0;
    Observe(static_cast<uint64_t>(seconds * 1e6));
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Estimated value at quantile `q` in [0, 1] (0.5 = median, 0.99 = p99),
  // linearly interpolated within the containing pow2 bucket. Returns 0 for an
  // empty histogram. The snapshot is not atomic against concurrent Observe
  // calls — like Count(), the result is approximate under writes.
  double ValueAtQuantile(double q) const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

struct SpanRecord {
  std::string name;
  uint64_t start_us = 0;  // since the process trace epoch (steady clock)
  uint64_t dur_us = 0;
  uint32_t tid = 0;    // dense thread index (ThreadIndex())
  uint32_t depth = 0;  // nesting depth within the recording thread
  // Attribute values are pre-rendered JSON fragments: bare numbers for
  // numeric attrs, quoted strings for text attrs.
  std::vector<std::pair<std::string, std::string>> attrs;

  // Convenience for tests: the raw value for `key`, or "" if absent.
  std::string Attr(std::string_view key) const;
};

// RAII span: records name + wall duration into the global buffer on
// destruction. A span constructed while tracing is disabled is inert (one
// relaxed load, no allocation).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  void AddAttr(std::string_view key, uint64_t value);
  void AddAttr(std::string_view key, std::string_view value);

 private:
  bool active_ = false;
  SpanRecord rec_;
  std::chrono::steady_clock::time_point start_{};
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

class Registry {
 public:
  // The process-wide registry. Instrumentation sites cache the returned
  // references in function-local statics; the global registry never deletes
  // a metric, so those references stay valid for the process lifetime.
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Get-or-create by name. The returned reference lives as long as the
  // registry (metrics are never erased, only replaced — see Register*).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Registers an externally owned metric under `name`, replacing any prior
  // registration. Used by per-instance components (PartitionCache) so the
  // registry always exports the live instance while each instance keeps
  // isolated counts for its own Stats() snapshot.
  void RegisterCounter(const std::string& name, std::shared_ptr<Counter> c);
  void RegisterGauge(const std::string& name, std::shared_ptr<Gauge> g);

  // Span sink (bounded; drops and counts overflow past kMaxSpans).
  static constexpr size_t kMaxSpans = 1 << 16;
  void RecordSpan(SpanRecord rec);
  std::vector<SpanRecord> SnapshotSpans() const;
  void ClearSpans();
  uint64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }

  // One JSON document: {"counters": {...}, "gauges": {...},
  // "histograms": {...}, "spans": {"dropped": N, "events": [...]}}.
  // Keys are emitted in sorted order so output is stable.
  std::string DumpJson() const;
  Status DumpJsonToFile(const std::string& path) const;

  // Chrome trace-event viewer format ({"traceEvents": [...]}) for the
  // recorded spans; loadable in chrome://tracing / Perfetto.
  std::string DumpTraceJson() const;
  Status DumpTraceJsonToFile(const std::string& path) const;

 private:
  // mu_ guards the name->metric maps only; the metric objects themselves are
  // sharded/relaxed atomics and are read and written without it.
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Counter>> counters_
      TARDIS_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<Gauge>> gauges_
      TARDIS_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<Histogram>> histograms_
      TARDIS_GUARDED_BY(mu_);

  mutable Mutex span_mu_;
  std::vector<SpanRecord> spans_ TARDIS_GUARDED_BY(span_mu_);
  std::atomic<uint64_t> dropped_spans_{0};
};

// Microseconds since the process-wide trace epoch (first telemetry use).
uint64_t NowMicros();

// RAII latency sample: observes the elapsed microseconds into `hist` on
// destruction. Inert (no clock read) when telemetry is disabled.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& hist)
      : hist_(Enabled() ? &hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatency() {
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start_)
              .count()));
    }
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_{};
};

// Escapes `s` for embedding in a JSON string literal (no surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace telemetry
}  // namespace tardis

#endif  // TARDIS_COMMON_TELEMETRY_H_

// Partition-level Bloom filter (paper §IV-C).
//
// TARDIS attaches one Bloom filter per partition, keyed on iSAX-T signatures,
// so exact-match queries for absent series can skip the (expensive) partition
// load entirely. False positives cost a wasted partition read; false
// negatives cannot occur.

#ifndef TARDIS_COMMON_BLOOM_FILTER_H_
#define TARDIS_COMMON_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tardis {

class BloomFilter {
 public:
  // Sizes the filter for `expected_items` at the target false-positive rate.
  // Uses the standard optimal m/n and k formulas.
  BloomFilter(size_t expected_items, double false_positive_rate);

  // Constructs an empty filter with explicit geometry (used by Decode).
  BloomFilter(size_t num_bits, uint32_t num_hashes);

  void Add(std::string_view key);
  // True if the key *may* be present; false means definitely absent.
  bool MayContain(std::string_view key) const;

  size_t num_bits() const { return num_bits_; }
  uint32_t num_hashes() const { return num_hashes_; }
  size_t inserted() const { return inserted_; }
  // Serialized/in-memory footprint in bytes.
  size_t SizeBytes() const { return bits_.size() * sizeof(uint64_t) + 16; }

  // Binary round-trip (little-endian geometry header + bit array).
  void EncodeTo(std::string* out) const;
  static Result<BloomFilter> Decode(std::string_view in);

 private:
  // 128-bit MurmurHash3-style finalizer split into two 64-bit values used
  // for double hashing: h_i = h1 + i * h2.
  static void HashKey(std::string_view key, uint64_t* h1, uint64_t* h2);

  size_t num_bits_;
  uint32_t num_hashes_;
  size_t inserted_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace tardis

#endif  // TARDIS_COMMON_BLOOM_FILTER_H_

// Standard-normal quantile function and SAX breakpoint tables.
//
// SAX discretises the z-normalised value space into `cardinality` stripes of
// equal probability under N(0, 1). The stripe boundaries ("breakpoints") are
// therefore the standard-normal quantiles at i/cardinality. Because the
// quantile grids for power-of-two cardinalities nest (the grid for 2^b'
// is a subset of the grid for 2^b when b' < b), the b'-bit SAX symbol of a
// value is exactly the b'-bit prefix of its b-bit symbol — the property both
// iSAX promotion and the iSAX-T DropRight operation rely on.

#ifndef TARDIS_COMMON_GAUSSIAN_H_
#define TARDIS_COMMON_GAUSSIAN_H_

#include <cstdint>
#include <vector>

namespace tardis {

// Inverse CDF of the standard normal distribution (Acklam's rational
// approximation, |relative error| < 1.15e-9). `p` must be in (0, 1).
double InverseNormalCdf(double p);

// Breakpoints for a SAX alphabet of the given cardinality: a sorted vector of
// (cardinality - 1) standard-normal quantiles. Cardinality must be >= 2.
// Symbol i (0 = lowest stripe) covers [bp[i-1], bp[i]) with bp[-1] = -inf and
// bp[cardinality-1] = +inf.
std::vector<double> SaxBreakpoints(uint32_t cardinality);

// Cached access to breakpoint tables for power-of-two cardinalities
// 2^1 .. 2^kMaxCardinalityBits. Thread-safe after first use of each table
// (tables are built eagerly at static-init time).
class BreakpointTable {
 public:
  static constexpr uint32_t kMaxCardinalityBits = 16;

  // Returns the breakpoints for cardinality 2^bits. bits in [1, 16].
  static const std::vector<double>& ForBits(uint32_t bits);

  // SAX symbol (0 .. 2^bits - 1, bottom stripe = 0) of `value` at cardinality
  // 2^bits: the number of breakpoints <= value, via binary search.
  static uint32_t Symbol(double value, uint32_t bits);

  // Lower/upper boundary of symbol `sym` at cardinality 2^bits.
  // Lower(0) = -infinity, Upper(2^bits - 1) = +infinity.
  static double Lower(uint32_t sym, uint32_t bits);
  static double Upper(uint32_t sym, uint32_t bits);

 private:
  static const std::vector<std::vector<double>>& Tables();
};

}  // namespace tardis

#endif  // TARDIS_COMMON_GAUSSIAN_H_

#include "common/gaussian.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace tardis {

double InverseNormalCdf(double p) {
  assert(p > 0.0 && p < 1.0);
  // Coefficients for Peter Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  static const double kPLow = 0.02425;
  static const double kPHigh = 1.0 - kPLow;

  double x;
  if (p < kPLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= kPHigh) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One step of Halley's method against the true CDF sharpens the result to
  // near machine precision.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

std::vector<double> SaxBreakpoints(uint32_t cardinality) {
  assert(cardinality >= 2);
  std::vector<double> bps;
  bps.reserve(cardinality - 1);
  for (uint32_t i = 1; i < cardinality; ++i) {
    bps.push_back(InverseNormalCdf(static_cast<double>(i) / cardinality));
  }
  return bps;
}

const std::vector<std::vector<double>>& BreakpointTable::Tables() {
  static const std::vector<std::vector<double>>* tables = [] {
    auto* t = new std::vector<std::vector<double>>();
    t->reserve(kMaxCardinalityBits + 1);
    t->push_back({});  // bits = 0 unused
    for (uint32_t bits = 1; bits <= kMaxCardinalityBits; ++bits) {
      t->push_back(SaxBreakpoints(1u << bits));
    }
    return t;
  }();
  return *tables;
}

const std::vector<double>& BreakpointTable::ForBits(uint32_t bits) {
  assert(bits >= 1 && bits <= kMaxCardinalityBits);
  return Tables()[bits];
}

uint32_t BreakpointTable::Symbol(double value, uint32_t bits) {
  const auto& bps = ForBits(bits);
  // Number of breakpoints <= value. upper_bound yields the first breakpoint
  // strictly greater than value, matching the stripe convention
  // [bp[i-1], bp[i]).
  return static_cast<uint32_t>(
      std::upper_bound(bps.begin(), bps.end(), value) - bps.begin());
}

double BreakpointTable::Lower(uint32_t sym, uint32_t bits) {
  if (sym == 0) return -std::numeric_limits<double>::infinity();
  return ForBits(bits)[sym - 1];
}

double BreakpointTable::Upper(uint32_t sym, uint32_t bits) {
  const auto& bps = ForBits(bits);
  if (sym >= bps.size()) return std::numeric_limits<double>::infinity();
  return bps[sym];
}

}  // namespace tardis

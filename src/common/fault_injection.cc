#include "common/fault_injection.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tardis {

namespace {

constexpr const char* kSiteNames[kNumFaultSites] = {
    "read_block", "partition_load", "sidecar_read", "partition_append", "task",
};

// SplitMix64 finalizer: a well-mixed 64-bit hash of (seed, site, draw).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool ParseSite(std::string_view name, FaultSite* site) {
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    if (name == kSiteNames[i]) {
      *site = static_cast<FaultSite>(i);
      return true;
    }
  }
  return false;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  const int i = static_cast<int>(site);
  if (i < 0 || i >= static_cast<int>(kNumFaultSites)) return "unknown";
  return kSiteNames[i];
}

FaultInjector::FaultInjector() {
  for (auto& p : probability_) p.store(0.0, std::memory_order_relaxed);
  const char* env = std::getenv("TARDIS_FAULTS");
  if (env != nullptr && env[0] != '\0') {
    Status st = Configure(env);
    if (!st.ok()) {
      std::fprintf(stderr, "TARDIS_FAULTS ignored: %s\n",
                   st.ToString().c_str());
    }
  }
  const char* crash_env = std::getenv("TARDIS_CRASH_POINT");
  if (crash_env != nullptr && crash_env[0] != '\0') {
    char* end = nullptr;
    const long long step = std::strtoll(crash_env, &end, 10);
    if (end != nullptr && *end == '\0') {
      crash_point_.store(step, std::memory_order_relaxed);
    } else {
      std::fprintf(stderr, "TARDIS_CRASH_POINT ignored: not an integer: %s\n",
                   crash_env);
    }
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

Status FaultInjector::Configure(const std::string& spec) {
  // Parse into a staging copy first so a malformed spec changes nothing.
  double staged[kNumFaultSites] = {};
  uint64_t staged_seed = seed();

  std::string_view rest = spec;
  // Optional ";seed=N" suffix (also accepted anywhere in the ';' list).
  while (!rest.empty()) {
    const size_t semi = rest.find(';');
    std::string_view part = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    if (part.empty()) continue;
    if (part.rfind("seed=", 0) == 0) {
      char* end = nullptr;
      const std::string value(part.substr(5));
      staged_seed = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || value.empty()) {
        return Status::InvalidArgument("fault spec: bad seed in '" +
                                       std::string(part) + "'");
      }
      continue;
    }
    // A comma-separated list of site:probability entries.
    while (!part.empty()) {
      const size_t comma = part.find(',');
      std::string_view entry = part.substr(0, comma);
      part = comma == std::string_view::npos ? std::string_view()
                                             : part.substr(comma + 1);
      if (entry.empty()) continue;
      const size_t colon = entry.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument("fault spec: expected site:prob, got '" +
                                       std::string(entry) + "'");
      }
      FaultSite site;
      if (!ParseSite(entry.substr(0, colon), &site)) {
        return Status::InvalidArgument(
            "fault spec: unknown site '" +
            std::string(entry.substr(0, colon)) +
            "' (expected read_block|partition_load|sidecar_read|"
            "partition_append|task)");
      }
      char* end = nullptr;
      const std::string value(entry.substr(colon + 1));
      const double p = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || value.empty() || p < 0.0 ||
          p > 1.0) {
        return Status::InvalidArgument("fault spec: probability '" + value +
                                       "' not in [0, 1]");
      }
      staged[static_cast<int>(site)] = p;
    }
  }

  seed_.store(staged_seed, std::memory_order_relaxed);
  bool any = false;
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    probability_[i].store(staged[i], std::memory_order_relaxed);
    any = any || staged[i] > 0.0;
  }
  enabled_.store(any, std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::SetProbability(FaultSite site, double p) {
  probability_[static_cast<int>(site)].store(p, std::memory_order_relaxed);
  if (p > 0.0) {
    enabled_.store(true, std::memory_order_relaxed);
    return;
  }
  bool any = false;
  for (const auto& prob : probability_) {
    any = any || prob.load(std::memory_order_relaxed) > 0.0;
  }
  enabled_.store(any, std::memory_order_relaxed);
}

void FaultInjector::SetSeed(uint64_t seed) {
  seed_.store(seed, std::memory_order_relaxed);
}

void FaultInjector::DisableAll() {
  for (auto& p : probability_) p.store(0.0, std::memory_order_relaxed);
  enabled_.store(false, std::memory_order_relaxed);
}

void FaultInjector::ResetCounters() {
  for (auto& d : draws_) d.store(0, std::memory_order_relaxed);
  for (auto& i : injected_) i.store(0, std::memory_order_relaxed);
}

double FaultInjector::probability(FaultSite site) const {
  return probability_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

Status FaultInjector::MaybeFail(FaultSite site, std::string_view detail) {
  const int i = static_cast<int>(site);
  const double p = probability_[i].load(std::memory_order_relaxed);
  if (p <= 0.0) return Status::OK();
  const uint64_t draw = draws_[i].fetch_add(1, std::memory_order_relaxed);
  // Map the draw's hash into [0, 1) with 53 bits of precision.
  const uint64_t h =
      Mix64(seed() ^ Mix64(static_cast<uint64_t>(i) << 32 | 0x5CA1ABu) ^
            Mix64(draw));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= p) return Status::OK();
  injected_[i].fetch_add(1, std::memory_order_relaxed);
  return Status::IOError("injected fault at " + std::string(FaultSiteName(site)) +
                         ": " + std::string(detail));
}

FaultInjector::SiteCounters FaultInjector::counters(FaultSite site) const {
  const int i = static_cast<int>(site);
  return {draws_[i].load(std::memory_order_relaxed),
          injected_[i].load(std::memory_order_relaxed)};
}

void FaultInjector::SetCrashPoint(int64_t step) {
  crash_point_.store(step, std::memory_order_relaxed);
}

void FaultInjector::ResetDurableSteps() {
  durable_steps_.store(0, std::memory_order_relaxed);
}

void FaultInjector::NoteDurableStep(const char* stage,
                                    const std::string& path) {
  const int64_t target = crash_point_.load(std::memory_order_relaxed);
  if (target < 0) return;
  const uint64_t step =
      durable_steps_.fetch_add(1, std::memory_order_relaxed);
  if (static_cast<int64_t>(step) != target) return;
  // A simulated power cut: no destructors, no stream flushes, no atexit
  // handlers — whatever bytes already reached the filesystem are all a
  // recovering process gets to see.
  std::fprintf(stderr, "TARDIS_CRASH_POINT %lld fired (%s %s)\n",
               static_cast<long long>(target), stage, path.c_str());
  std::fflush(stderr);
  std::_Exit(kCrashPointExitCode);
}

bool IsInjectedFault(const Status& status) {
  return !status.ok() &&
         status.message().rfind("injected fault", 0) == 0;
}

}  // namespace tardis

// Status and Result<T>: Arrow/RocksDB-style error propagation.
//
// All fallible operations in the TARDIS library return a Status (or a
// Result<T> when they also produce a value). Exceptions never cross public
// API boundaries.

#ifndef TARDIS_COMMON_STATUS_H_
#define TARDIS_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace tardis {

// Broad error categories, modelled after arrow::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kOutOfRange,
  kCorruption,
  kNotImplemented,
  kInternal,
};

// A Status carries an error code and a human-readable message. The OK status
// carries neither and is cheap to copy.
//
// [[nodiscard]]: silently dropping a Status is how partial writes and
// swallowed corruption reports happen, so an unused return value is a
// compiler warning (and -Werror=unused-result in this repo's build makes it
// an error). To drop one deliberately, cast with a justification:
//     (void)store.Remove(pid);  // best-effort cleanup; failure re-handled
// (tools/lint/tardis_lint.py requires the comment.)
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }

  // Formats as "OK" or "<Code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kCorruption: return "Corruption";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

// Result<T> holds either a value or an error Status. [[nodiscard]] for the
// same reason as Status: an ignored Result is an ignored error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return value;` or `return Status::NotFound(...)`.
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : var_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(var_).ok() && "Result must not hold an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(var_);
  }

  // Accessors require ok(); checked with assert in debug builds.
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> var_;
};

// Propagates a non-OK Status from an expression returning Status.
#define TARDIS_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::tardis::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

// Evaluates an expression returning Result<T>; on error propagates the
// Status, otherwise moves the value into `lhs`.
#define TARDIS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define TARDIS_ASSIGN_OR_RETURN(lhs, expr) \
  TARDIS_ASSIGN_OR_RETURN_IMPL(TARDIS_CONCAT_(_res_, __LINE__), lhs, expr)

#define TARDIS_CONCAT_INNER_(a, b) a##b
#define TARDIS_CONCAT_(a, b) TARDIS_CONCAT_INNER_(a, b)

}  // namespace tardis

#endif  // TARDIS_COMMON_STATUS_H_

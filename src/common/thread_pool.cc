#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace tardis {

void TaskGroup::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Enqueue({std::move(task), this});
}

void TaskGroup::Wait() {
  MutexLock lock(mu_);
  while (pending_ != 0) done_cv_.Wait(lock);
}

void TaskGroup::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // ~4 chunks per thread balances load without excessive queue traffic.
  const size_t target_chunks = std::max<size_t>(1, pool_->num_threads() * 4);
  const size_t chunk = std::max<size_t>(1, (n + target_chunks - 1) / target_chunks);
  for (size_t start = 0; start < n; start += chunk) {
    const size_t end = std::min(n, start + chunk);
    Submit([&fn, start, end] {
      for (size_t i = start; i < end; ++i) fn(i);
    });
  }
  Wait();
}

ThreadPool::ThreadPool(size_t num_threads) {
  assert(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  task_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Enqueue(Task task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
  }
  task_cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) task_cv_.Wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task.fn();
    {
      MutexLock lock(task.group->mu_);
      if (--task.group->pending_ == 0) task.group->done_cv_.NotifyAll();
    }
  }
}

}  // namespace tardis

#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace tardis {

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Enqueue({std::move(task), this});
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // ~4 chunks per thread balances load without excessive queue traffic.
  const size_t target_chunks = std::max<size_t>(1, pool_->num_threads() * 4);
  const size_t chunk = std::max<size_t>(1, (n + target_chunks - 1) / target_chunks);
  for (size_t start = 0; start < n; start += chunk) {
    const size_t end = std::min(n, start + chunk);
    Submit([&fn, start, end] {
      for (size_t i = start; i < end; ++i) fn(i);
    });
  }
  Wait();
}

ThreadPool::ThreadPool(size_t num_threads) {
  assert(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task.fn();
    {
      std::lock_guard<std::mutex> lock(task.group->mu_);
      if (--task.group->pending_ == 0) task.group->done_cv_.notify_all();
    }
  }
}

}  // namespace tardis

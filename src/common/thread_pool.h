// Fixed-size worker pool. The cluster layer maps "Spark executors" onto
// these workers; one pool is shared per Cluster instance.
//
// Waiting is per-TaskGroup: independent callers (e.g. concurrent queries
// fanning out over partitions) each wait only for their own tasks, so the
// pool can be shared safely. ThreadPool::Submit/Wait remain as conveniences
// backed by a default group.

#ifndef TARDIS_COMMON_THREAD_POOL_H_
#define TARDIS_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace tardis {

class ThreadPool;

// A set of tasks whose completion can be awaited independently of any other
// tasks on the same pool. Thread-safe; must outlive its submitted tasks
// (Wait() before destruction, which the destructor also enforces).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Enqueues a task on the pool, tracked by this group.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted through this group has finished.
  void Wait();

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // Work is chunked so per-task overhead stays negligible for large n.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  friend class ThreadPool;

  ThreadPool* pool_;
  Mutex mu_;
  CondVar done_cv_;
  size_t pending_ TARDIS_GUARDED_BY(mu_) = 0;  // queued + running group tasks
};

class ThreadPool {
 public:
  // Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Convenience single-caller API backed by the default group.
  void Submit(std::function<void()> task) { default_group_.Submit(std::move(task)); }
  void Wait() { default_group_.Wait(); }
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    TaskGroup group(this);
    group.ParallelFor(n, fn);
  }

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void Enqueue(Task task);
  void WorkerLoop();

  std::vector<std::thread> threads_;
  Mutex mu_;
  std::queue<Task> tasks_ TARDIS_GUARDED_BY(mu_);
  CondVar task_cv_;  // signals workers: work available / stop
  bool stop_ TARDIS_GUARDED_BY(mu_) = false;
  TaskGroup default_group_{this};
};

}  // namespace tardis

#endif  // TARDIS_COMMON_THREAD_POOL_H_

// Deterministic, fast pseudo-random number generation (splitmix64 +
// xoshiro256**). Every workload generator and sampling step in the repository
// is seeded explicitly so runs are reproducible bit-for-bit.

#ifndef TARDIS_COMMON_RNG_H_
#define TARDIS_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace tardis {

// splitmix64: used to expand a single 64-bit seed into xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna: high-quality, 2^256-1 period generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5851f42d4c957f2dULL) {
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return (NextU64() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection method (bias negligible for our use,
    // bounds << 2^64, so the simple multiply-shift is fine).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * bound) >> 64);
  }

  // Standard normal via Box-Muller (cached second value).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1, u2;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace tardis

#endif  // TARDIS_COMMON_RNG_H_

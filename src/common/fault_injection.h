// Deterministic, seedable fault injection — the test double for the machine
// failures a real TARDIS deployment inherits from Spark/HDFS (lost tasks,
// failed block reads, torn appends). Hook points in the storage layer and
// the cluster task bodies call MaybeInjectFault; when a site's probability
// is zero (the default) the hook is a single relaxed atomic load.
//
// Configuration
//   Environment:   TARDIS_FAULTS=read_block:0.05,partition_load:0.02,task:0.05;seed=42
//                  (parsed once, on first use of FaultInjector::Global()).
//   Programmatic:  FaultInjector::Global().Configure("task:0.1;seed=7")
//                  or SetProbability / SetSeed for individual knobs.
//
// Determinism: each site keeps a draw counter; draw n fails iff
// hash(seed, site, n) maps below the site's probability. For a fixed seed
// the failing draw indices are a fixed set — a single-threaded run replays
// exactly, and a multi-threaded run injects the same number of faults at the
// same draw indices (which operation owns a given draw depends on
// scheduling). Injected failures carry StatusCode::kIOError and the string
// "injected fault", and are transient: a retried operation draws again.

#ifndef TARDIS_COMMON_FAULT_INJECTION_H_
#define TARDIS_COMMON_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tardis {

enum class FaultSite : int {
  kReadBlock = 0,       // BlockStore::ReadBlock
  kPartitionLoad,       // PartitionStore::ReadPartition
  kSidecarRead,         // PartitionStore::ReadSidecar
  kPartitionAppend,     // PartitionStore::AppendPartitionRaw (pre-write)
  kTask,                // cluster task bodies (MapBlocks / shuffle / MapPartitions)
};
inline constexpr size_t kNumFaultSites = 5;

// Process exit code used by the crash-point mode below. Distinct from every
// status-derived exit code the CLI/harness use, so a driver can tell "the
// injected crash fired" apart from an ordinary failure.
inline constexpr int kCrashPointExitCode = 86;

const char* FaultSiteName(FaultSite site);

class FaultInjector {
 public:
  struct SiteCounters {
    uint64_t draws = 0;     // MaybeFail evaluations at this site
    uint64_t injected = 0;  // draws that returned a failure
  };

  // The process-wide injector; initialised from $TARDIS_FAULTS on first use.
  static FaultInjector& Global();

  // Replaces the whole configuration from a spec string:
  //   site:probability[,site:probability...][;seed=N]
  // Unlisted sites are reset to probability 0; an empty spec disables
  // everything. Probabilities must parse in [0, 1].
  Status Configure(const std::string& spec);

  void SetProbability(FaultSite site, double p);
  void SetSeed(uint64_t seed);
  // Zeroes every probability (counters are kept; see ResetCounters).
  void DisableAll();
  void ResetCounters();

  double probability(FaultSite site) const;
  uint64_t seed() const { return seed_.load(std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Draws at `site`: returns an injected IOError with probability p, OK
  // otherwise. `detail` (e.g. the file path) is embedded in the message.
  Status MaybeFail(FaultSite site, std::string_view detail);

  SiteCounters counters(FaultSite site) const;

  // --- Crash-point mode (torn-write recovery harness) ---
  // Every durable-write step (WriteFileAtomic calls NoteDurableStep four
  // times: with the temp file written but not yet fsynced, with it fsynced
  // but not yet renamed, after the rename, and after the parent-directory
  // fsync that makes the rename durable) increments a process-wide step
  // counter. When the counter reaches
  // the configured crash point the process terminates immediately via
  // _exit(kCrashPointExitCode) — no destructors, no buffered-stream flushes —
  // simulating a power-cut at exactly that durable step. A negative crash
  // point (the default) disables the mode; $TARDIS_CRASH_POINT seeds it at
  // startup. A driver enumerates the durable steps of an operation by
  // re-running it with crash point 0, 1, 2, ... until a run survives.
  void SetCrashPoint(int64_t step);
  int64_t crash_point() const {
    return crash_point_.load(std::memory_order_relaxed);
  }
  // Durable steps observed since construction / ResetDurableSteps.
  uint64_t durable_steps() const {
    return durable_steps_.load(std::memory_order_relaxed);
  }
  void ResetDurableSteps();

  // The hook WriteFileAtomic calls around its fsync/rename/dirsync sequence.
  // `stage` names the step ("pre-fsync" / "pre-rename" / "post-rename" /
  // "post-dirsync") for the crash banner.
  void NoteDurableStep(const char* stage, const std::string& path);

 private:
  FaultInjector();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> seed_{42};
  std::array<std::atomic<double>, kNumFaultSites> probability_{};
  std::array<std::atomic<uint64_t>, kNumFaultSites> draws_{};
  std::array<std::atomic<uint64_t>, kNumFaultSites> injected_{};
  std::atomic<int64_t> crash_point_{-1};
  std::atomic<uint64_t> durable_steps_{0};
};

// Hook used at injection points. No-op unless a fault rate is configured.
inline Status MaybeInjectFault(FaultSite site, std::string_view detail) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.enabled()) return Status::OK();
  return injector.MaybeFail(site, detail);
}

// True when `status` is an injected fault (used by tests and logging; the
// retry layer treats injected faults like any other transient I/O error).
bool IsInjectedFault(const Status& status);

// Durable-step hook for WriteFileAtomic. One relaxed load when the crash
// mode is off (crash point < 0), like MaybeInjectFault.
inline void MaybeCrashAtDurableStep(const char* stage,
                                    const std::string& path) {
  FaultInjector& injector = FaultInjector::Global();
  if (injector.crash_point() < 0) return;
  injector.NoteDurableStep(stage, path);
}

}  // namespace tardis

#endif  // TARDIS_COMMON_FAULT_INJECTION_H_

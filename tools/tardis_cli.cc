// tardis — command-line driver for the TARDIS indexing framework.
//
// Subcommands:
//   gen    --kind rw|tx|dn|na --count N --out DIR [--length N] [--seed S]
//   build  --data DIR --index DIR [--gmax N] [--lmax N] [--sample P]
//          [--bits B] [--w W] [--workers N] [--no-bloom]
//          [--cache-mb MB] [--spill-mb MB] [--pivots K]
//   stats  --index DIR
//   exact  --index DIR --data DIR --rid N [--no-bloom] [--cache-mb MB]
//   knn    --index DIR --data DIR --rid N [--k K]
//          [--strategy target|one|multi|exact] [--cache-mb MB]
//   range  --index DIR --data DIR --rid N --radius R [--cache-mb MB]
//   append --index DIR --kind rw|tx|dn|na --count N [--seed S]
//   recover --index DIR
//
// --cache-mb sets the partition-cache byte budget (0 disables caching): at
// build time it is persisted as the index default, on query commands it
// overrides the persisted budget for that invocation. --spill-mb sets the
// streaming shuffle's per-worker spill threshold.
//
// --pivots K at build time selects K reference pivots and materialises the
// per-record pivot-distance sidecars that power triangle-inequality pruning
// (0, the default, disables the feature; see docs/TUNING.md). On the query
// commands --pivots on|off toggles the pruning per invocation and
// --sched on|off toggles the batch engine's adaptive partition scheduler;
// both default to on (override process-wide with TARDIS_PIVOTS=off /
// TARDIS_SCHED=off). Neither changes results — only work skipped and
// dispatch order.
//
// Query commands (exact/knn/range) also accept --arena-stats: after the
// query ran, print the partition cache's resident columnar arenas (count and
// exact charged bytes) plus the scan-path geometry (SoA stride, ranking tile
// size, active kernel backend). See docs/TUNING.md.
//
// Every subcommand also accepts the observability flags:
//   --metrics-json PATH   enable telemetry and write a JSON snapshot of all
//                         counters, gauges, histograms, and spans on exit
//   --trace-json PATH     additionally record spans and write a Chrome
//                         trace-event file (load via chrome://tracing)
// Setting the TARDIS_TRACE environment variable to a non-empty value other
// than "0" enables both without flags (the snapshot then goes to stderr
// only if a path was given). See docs/TUNING.md.
//
// --max-task-retries N (build and query commands) caps how many times a
// failed cluster task or partition load is re-executed before giving up
// (0 disables retries; the default is 2). Fault injection for testing is
// configured via the TARDIS_FAULTS environment variable — see
// docs/RELIABILITY.md. Queries that lose a partition after retries degrade:
// kNN/range answer from the remaining partitions and report the reduced
// coverage; exact match fails instead, since absence claims must be
// provable.
//
// The exact/knn/range commands also run batched through the partition-
// grouped QueryEngine (one load per partition instead of one per query):
//   --batch N        query rids [--rid, --rid + N)
//   --query-file F   one query rid per line (overrides --batch)
// Batch mode prints aggregate engine stats (loads issued vs the loads the
// same queries would cost one at a time) instead of per-query detail; knn
// batch mode supports the target|one|multi strategies.
//
// Example session:
//   tardis gen   --kind rw --count 50000 --out /tmp/rw
//   tardis build --data /tmp/rw --index /tmp/rw_idx
//   tardis stats --index /tmp/rw_idx
//   tardis knn   --index /tmp/rw_idx --data /tmp/rw --rid 42 --k 10
//                (add --strategy target|one|multi|exact to pick a strategy)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "core/index_stats.h"
#include "core/query_engine.h"
#include "core/tardis_index.h"
#include "core/topk.h"
#include "storage/manifest.h"
#include "ts/kernels.h"
#include "workload/datasets.h"

namespace tardis {
namespace {

// Minimal --flag value parser: every flag takes a value except boolean
// flags, which are listed explicitly.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        ok_ = false;
        return;
      }
      key = key.substr(2);
      if (key == "no-bloom" || key == "arena-stats") {
        values_[key] = "1";
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", key.c_str());
        ok_ = false;
        return;
      }
      values_[key] = argv[++i];
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<DatasetKind> ParseKind(const std::string& kind) {
  if (kind == "rw") return DatasetKind::kRandomWalk;
  if (kind == "tx") return DatasetKind::kTexmex;
  if (kind == "dn") return DatasetKind::kDna;
  if (kind == "na") return DatasetKind::kNoaa;
  return Status::InvalidArgument("unknown dataset kind: " + kind +
                                 " (expected rw|tx|dn|na)");
}

int CmdGen(const Flags& flags) {
  auto kind = ParseKind(flags.Get("kind", "rw"));
  if (!kind.ok()) return Fail(kind.status());
  const uint64_t count = flags.GetU64("count", 10000);
  const uint32_t length = static_cast<uint32_t>(
      flags.GetU64("length", DatasetSeriesLength(*kind)));
  const std::string out = flags.Get("out");
  if (out.empty()) return Fail(Status::InvalidArgument("--out is required"));

  Stopwatch sw;
  auto dataset = MakeDataset(*kind, count, length, flags.GetU64("seed", 2026));
  if (!dataset.ok()) return Fail(dataset.status());
  auto store = BlockStore::Create(out, *dataset,
                                  static_cast<uint32_t>(flags.GetU64("block", 500)));
  if (!store.ok()) return Fail(store.status());
  std::printf("generated %llu %s series (length %u) into %s in %.2fs "
              "(%u blocks)\n",
              static_cast<unsigned long long>(count), DatasetFullName(*kind),
              length, out.c_str(), sw.ElapsedSeconds(), store->num_blocks());
  return 0;
}

int CmdBuild(const Flags& flags) {
  const std::string data = flags.Get("data");
  const std::string index_dir = flags.Get("index");
  if (data.empty() || index_dir.empty()) {
    return Fail(Status::InvalidArgument("--data and --index are required"));
  }
  auto store = BlockStore::Open(data);
  if (!store.ok()) return Fail(store.status());

  TardisConfig config;
  config.word_length = static_cast<uint32_t>(flags.GetU64("w", 8));
  config.initial_bits = static_cast<uint8_t>(flags.GetU64("bits", 6));
  config.g_max_size = flags.GetU64("gmax", 2000);
  config.l_max_size = flags.GetU64("lmax", 200);
  config.sampling_percent = flags.GetDouble("sample", 10.0);
  config.num_workers = static_cast<uint32_t>(flags.GetU64("workers", 0));
  config.build_bloom = !flags.Has("no-bloom");
  config.cache_budget_bytes =
      flags.GetU64("cache-mb", config.cache_budget_bytes >> 20) << 20;
  config.shuffle_spill_bytes =
      flags.GetU64("spill-mb", config.shuffle_spill_bytes >> 20) << 20;
  config.retry.max_attempts = static_cast<uint32_t>(
      flags.GetU64("max-task-retries", config.retry.max_attempts - 1) + 1);
  config.num_pivots = static_cast<uint32_t>(flags.GetU64("pivots", 0));

  auto cluster = std::make_shared<Cluster>(config.num_workers);
  TardisIndex::BuildTimings timings;
  auto index = TardisIndex::Build(cluster, *store, index_dir, config, &timings);
  if (!index.ok()) return Fail(index.status());
  std::printf("built index over %llu records: %u partitions in %.2fs\n",
              static_cast<unsigned long long>(store->num_records()),
              index->num_partitions(), timings.TotalSeconds());
  std::printf("  global %.3fs  shuffle %.3fs  local %.3fs  bloom-extra %.3fs\n",
              timings.global.TotalSeconds(), timings.shuffle_seconds,
              timings.local_build_seconds, timings.bloom_extra_seconds);
  std::printf("  shuffle spill: %llu spill / %llu final flushes, peak buffer "
              "%llu bytes\n",
              static_cast<unsigned long long>(timings.shuffle.spill_flushes),
              static_cast<unsigned long long>(timings.shuffle.final_flushes),
              static_cast<unsigned long long>(
                  timings.shuffle.peak_buffer_bytes));
  if (timings.job.retries > 0) {
    std::printf("  task retries: %llu attempts over %llu tasks "
                "(%llu retried, %llu exhausted)\n",
                static_cast<unsigned long long>(timings.job.attempts),
                static_cast<unsigned long long>(timings.job.tasks),
                static_cast<unsigned long long>(timings.job.retries),
                static_cast<unsigned long long>(timings.job.failed_tasks));
  }
  return 0;
}

// Applies per-invocation --cache-mb / --max-task-retries / --pivots
// overrides to an opened index.
void ApplyCacheOverride(const Flags& flags, TardisIndex* index) {
  if (flags.Has("cache-mb")) {
    index->SetCacheBudget(flags.GetU64("cache-mb", 0) << 20);
  }
  if (flags.Has("max-task-retries")) {
    RetryPolicy retry = index->retry_policy();
    retry.max_attempts =
        static_cast<uint32_t>(flags.GetU64("max-task-retries", 2) + 1);
    index->SetRetryPolicy(retry);
  }
  if (flags.Has("pivots")) {
    index->SetPivotPruning(flags.Get("pivots") != "off");
  }
}

// Applies the per-invocation --sched on|off override to a batch engine.
void ApplySchedOverride(const Flags& flags, QueryEngine* engine) {
  if (flags.Has("sched")) {
    engine->SetSchedulingEnabled(flags.Get("sched") != "off");
  }
}

int CmdStats(const Flags& flags) {
  const std::string index_dir = flags.Get("index");
  if (index_dir.empty()) return Fail(Status::InvalidArgument("--index is required"));
  auto cluster = std::make_shared<Cluster>();
  auto index = TardisIndex::Open(cluster, index_dir);
  if (!index.ok()) return Fail(index.status());
  auto report = ComputeIndexReport(*index);
  if (!report.ok()) return Fail(report.status());
  PrintIndexReport(*report, stdout);
  return 0;
}

// Loads record `rid` from the dataset to use as a query.
Result<TimeSeries> LoadQuery(const std::string& data, RecordId rid) {
  TARDIS_ASSIGN_OR_RETURN(BlockStore store, BlockStore::Open(data));
  if (rid >= store.num_records()) {
    return Status::OutOfRange("rid beyond dataset");
  }
  const uint32_t block = static_cast<uint32_t>(rid / store.block_capacity());
  TARDIS_ASSIGN_OR_RETURN(std::vector<Record> records, store.ReadBlock(block));
  for (auto& rec : records) {
    if (rec.rid == rid) return std::move(rec.values);
  }
  return Status::NotFound("record not in its block (corrupt store?)");
}

// Collects the query rids of a batched invocation: --query-file (one rid
// per line) wins over --batch N (rids [--rid, --rid + N)). Returns an empty
// vector when neither flag is present (single-query mode).
Result<std::vector<RecordId>> BatchRids(const Flags& flags) {
  std::vector<RecordId> rids;
  const std::string file = flags.Get("query-file");
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) return Status::NotFound("cannot open query file: " + file);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      rids.push_back(std::strtoull(line.c_str(), nullptr, 10));
    }
    if (rids.empty()) {
      return Status::InvalidArgument("query file has no rids: " + file);
    }
    return rids;
  }
  const uint64_t n = flags.GetU64("batch", 0);
  const uint64_t start = flags.GetU64("rid", 0);
  rids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) rids.push_back(start + i);
  return rids;
}

// Loads the series for a batch of rids, reading each data block once.
Result<std::vector<TimeSeries>> LoadQueries(const std::string& data,
                                            const std::vector<RecordId>& rids) {
  TARDIS_ASSIGN_OR_RETURN(BlockStore store, BlockStore::Open(data));
  std::vector<TimeSeries> queries(rids.size());
  std::map<uint32_t, std::vector<size_t>> by_block;
  for (size_t i = 0; i < rids.size(); ++i) {
    if (rids[i] >= store.num_records()) {
      return Status::OutOfRange("rid beyond dataset");
    }
    by_block[static_cast<uint32_t>(rids[i] / store.block_capacity())]
        .push_back(i);
  }
  for (const auto& [block, idxs] : by_block) {
    TARDIS_ASSIGN_OR_RETURN(std::vector<Record> records,
                            store.ReadBlock(block));
    for (size_t i : idxs) {
      bool found = false;
      for (auto& rec : records) {
        if (rec.rid == rids[i]) {
          queries[i] = rec.values;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotFound("record not in its block (corrupt store?)");
      }
    }
  }
  return queries;
}

void PrintBatchStats(const QueryEngineStats& stats, double wall_ms) {
  std::printf("  wall %.3fms (%.1f queries/s)\n", wall_ms,
              wall_ms > 0 ? stats.queries * 1000.0 / wall_ms : 0.0);
  const double saved =
      stats.logical_partition_loads > 0
          ? 100.0 * (1.0 - static_cast<double>(stats.partitions_loaded) /
                               stats.logical_partition_loads)
          : 0.0;
  std::printf("  partition loads: %llu issued vs %llu one-at-a-time "
              "(%.1f%% saved), %llu candidates\n",
              static_cast<unsigned long long>(stats.partitions_loaded),
              static_cast<unsigned long long>(stats.logical_partition_loads),
              saved, static_cast<unsigned long long>(stats.candidates));
  if (!stats.results_complete) {
    std::printf("  DEGRADED: %llu of %llu partition loads failed after "
                "retries; results may be incomplete\n",
                static_cast<unsigned long long>(stats.partitions_failed),
                static_cast<unsigned long long>(stats.partitions_requested));
  }
}

// --arena-stats: partition-cache residency (decoded columnar arenas) and the
// scan-path geometry the queries just ran with.
void MaybePrintArenaStats(const Flags& flags, const TardisIndex& index) {
  if (!flags.Has("arena-stats")) return;
  const PartitionCacheStats cs = index.CacheStats();
  const uint32_t len = index.series_length();
  std::printf("arena stats: %llu resident arena(s), %.2f MiB charged, "
              "%llu pinned — %llu hits / %llu misses / %llu coalesced / "
              "%llu evictions\n",
              static_cast<unsigned long long>(cs.resident_partitions),
              static_cast<double>(cs.resident_bytes) / (1 << 20),
              static_cast<unsigned long long>(cs.pinned_partitions),
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.coalesced),
              static_cast<unsigned long long>(cs.evictions));
  std::printf("  layout: SoA values plane (64B-aligned, stride %u floats), "
              "%zu-record ranking tiles, kernels=%s\n",
              len, RankTileRecords(len),
              KernelBackendName(ActiveKernelBackend()));
}

// Single-query counterpart: warns when kNN/range skipped failed partitions.
void PrintQueryCoverage(const KnnStats& stats) {
  if (!stats.results_complete) {
    std::printf("  DEGRADED: %u of %u partition loads failed after retries; "
                "results may be incomplete\n",
                stats.partitions_failed, stats.partitions_requested);
  }
}

int CmdExact(const Flags& flags) {
  const std::string index_dir = flags.Get("index");
  const std::string data = flags.Get("data");
  if (index_dir.empty() || data.empty()) {
    return Fail(Status::InvalidArgument("--index and --data are required"));
  }
  auto cluster = std::make_shared<Cluster>();
  auto index = TardisIndex::Open(cluster, index_dir);
  if (!index.ok()) return Fail(index.status());
  ApplyCacheOverride(flags, &*index);

  auto batch_rids = BatchRids(flags);
  if (!batch_rids.ok()) return Fail(batch_rids.status());
  if (!batch_rids->empty()) {
    auto queries = LoadQueries(data, *batch_rids);
    if (!queries.ok()) return Fail(queries.status());
    QueryEngine engine(*index);
    ApplySchedOverride(flags, &engine);
    Stopwatch sw;
    QueryEngineStats qstats;
    auto results =
        engine.ExactMatchBatch(*queries, !flags.Has("no-bloom"), &qstats);
    if (!results.ok()) return Fail(results.status());
    size_t hits = 0, with_hits = 0;
    for (const auto& r : *results) {
      hits += r.size();
      with_hits += r.empty() ? 0 : 1;
    }
    std::printf("batched exact match: %zu queries, %zu hit(s) across %zu "
                "quer%s, %llu bloom negatives\n",
                results->size(), hits, with_hits, with_hits == 1 ? "y" : "ies",
                static_cast<unsigned long long>(qstats.bloom_negatives));
    PrintBatchStats(qstats, sw.ElapsedMillis());
    MaybePrintArenaStats(flags, *index);
    return 0;
  }

  auto query = LoadQuery(data, flags.GetU64("rid", 0));
  if (!query.ok()) return Fail(query.status());

  Stopwatch sw;
  ExactMatchStats stats;
  auto rids = index->ExactMatch(*query, !flags.Has("no-bloom"), &stats);
  if (!rids.ok()) return Fail(rids.status());
  std::printf("exact match: %zu hit(s) in %.3fms (bloom negative: %s, "
              "candidates: %u)\n",
              rids->size(), sw.ElapsedMillis(),
              stats.bloom_negative ? "yes" : "no", stats.candidates);
  for (RecordId rid : *rids) {
    std::printf("  rid %llu\n", static_cast<unsigned long long>(rid));
  }
  MaybePrintArenaStats(flags, *index);
  return 0;
}

int CmdKnn(const Flags& flags) {
  const std::string index_dir = flags.Get("index");
  const std::string data = flags.Get("data");
  if (index_dir.empty() || data.empty()) {
    return Fail(Status::InvalidArgument("--index and --data are required"));
  }
  auto cluster = std::make_shared<Cluster>();
  auto index = TardisIndex::Open(cluster, index_dir);
  if (!index.ok()) return Fail(index.status());
  ApplyCacheOverride(flags, &*index);

  const uint32_t k = static_cast<uint32_t>(flags.GetU64("k", 10));
  const std::string strategy = flags.Get("strategy", "multi");

  auto batch_rids = BatchRids(flags);
  if (!batch_rids.ok()) return Fail(batch_rids.status());
  if (!batch_rids->empty()) {
    KnnStrategy strat;
    if (strategy == "target") {
      strat = KnnStrategy::kTargetNode;
    } else if (strategy == "one") {
      strat = KnnStrategy::kOnePartition;
    } else if (strategy == "multi") {
      strat = KnnStrategy::kMultiPartitions;
    } else {
      return Fail(Status::InvalidArgument(
          "batch mode supports --strategy target|one|multi, got: " +
          strategy));
    }
    auto queries = LoadQueries(data, *batch_rids);
    if (!queries.ok()) return Fail(queries.status());
    QueryEngine engine(*index);
    ApplySchedOverride(flags, &engine);
    Stopwatch sw;
    QueryEngineStats qstats;
    auto results = engine.KnnApproximateBatch(*queries, k, strat, &qstats);
    if (!results.ok()) return Fail(results.status());
    size_t neighbors = 0;
    for (const auto& r : *results) neighbors += r.size();
    std::printf("batched %u-NN (%s, kernels=%s): %zu queries, %zu "
                "neighbour(s)\n",
                k, strategy.c_str(), KernelBackendName(ActiveKernelBackend()),
                results->size(), neighbors);
    PrintBatchStats(qstats, sw.ElapsedMillis());
    MaybePrintArenaStats(flags, *index);
    return 0;
  }

  auto query = LoadQuery(data, flags.GetU64("rid", 0));
  if (!query.ok()) return Fail(query.status());
  Stopwatch sw;
  KnnStats stats;
  Result<std::vector<Neighbor>> result =
      Status::InvalidArgument("unknown strategy: " + strategy +
                              " (expected target|one|multi|exact)");
  if (strategy == "target") {
    result = index->KnnApproximate(*query, k, KnnStrategy::kTargetNode, &stats);
  } else if (strategy == "one") {
    result = index->KnnApproximate(*query, k, KnnStrategy::kOnePartition, &stats);
  } else if (strategy == "multi") {
    result =
        index->KnnApproximate(*query, k, KnnStrategy::kMultiPartitions, &stats);
  } else if (strategy == "exact") {
    result = index->KnnExact(*query, k, &stats);
  }
  if (!result.ok()) return Fail(result.status());
  std::printf("%u-NN (%s) in %.3fms — %u partition(s) loaded, %llu candidates\n",
              k, strategy.c_str(), sw.ElapsedMillis(), stats.partitions_loaded,
              static_cast<unsigned long long>(stats.candidates));
  PrintQueryCoverage(stats);
  for (const Neighbor& nb : *result) {
    std::printf("  rid %-10llu dist %.6f\n",
                static_cast<unsigned long long>(nb.rid), nb.distance);
  }
  MaybePrintArenaStats(flags, *index);
  return 0;
}

int CmdRange(const Flags& flags) {
  const std::string index_dir = flags.Get("index");
  const std::string data = flags.Get("data");
  if (index_dir.empty() || data.empty()) {
    return Fail(Status::InvalidArgument("--index and --data are required"));
  }
  auto cluster = std::make_shared<Cluster>();
  auto index = TardisIndex::Open(cluster, index_dir);
  if (!index.ok()) return Fail(index.status());
  ApplyCacheOverride(flags, &*index);
  const double radius = flags.GetDouble("radius", 1.0);

  auto batch_rids = BatchRids(flags);
  if (!batch_rids.ok()) return Fail(batch_rids.status());
  if (!batch_rids->empty()) {
    auto queries = LoadQueries(data, *batch_rids);
    if (!queries.ok()) return Fail(queries.status());
    QueryEngine engine(*index);
    ApplySchedOverride(flags, &engine);
    Stopwatch sw;
    QueryEngineStats qstats;
    auto results = engine.RangeSearchBatch(*queries, radius, &qstats);
    if (!results.ok()) return Fail(results.status());
    size_t matches = 0;
    for (const auto& r : *results) matches += r.size();
    std::printf("batched range(r=%.3f): %zu queries, %zu record(s)\n", radius,
                results->size(), matches);
    PrintBatchStats(qstats, sw.ElapsedMillis());
    MaybePrintArenaStats(flags, *index);
    return 0;
  }

  auto query = LoadQuery(data, flags.GetU64("rid", 0));
  if (!query.ok()) return Fail(query.status());

  Stopwatch sw;
  KnnStats stats;
  auto result = index->RangeSearch(*query, radius, &stats);
  if (!result.ok()) return Fail(result.status());
  std::printf("range(r=%.3f): %zu record(s) in %.3fms — %u/%u partitions "
              "loaded, %llu candidates\n",
              radius, result->size(), sw.ElapsedMillis(),
              stats.partitions_loaded, index->num_partitions(),
              static_cast<unsigned long long>(stats.candidates));
  PrintQueryCoverage(stats);
  for (const Neighbor& nb : *result) {
    std::printf("  rid %-10llu dist %.6f\n",
                static_cast<unsigned long long>(nb.rid), nb.distance);
  }
  MaybePrintArenaStats(flags, *index);
  return 0;
}

int CmdAppend(const Flags& flags) {
  const std::string index_dir = flags.Get("index");
  if (index_dir.empty()) return Fail(Status::InvalidArgument("--index is required"));
  auto kind = ParseKind(flags.Get("kind", "rw"));
  if (!kind.ok()) return Fail(kind.status());
  auto cluster = std::make_shared<Cluster>();
  auto index = TardisIndex::Open(cluster, index_dir);
  if (!index.ok()) return Fail(index.status());

  const uint64_t count = flags.GetU64("count", 1000);
  auto batch = MakeDataset(*kind, count, index->series_length(),
                           flags.GetU64("seed", 4096));
  if (!batch.ok()) return Fail(batch.status());
  Stopwatch sw;
  auto rids = index->Append(*batch);
  if (!rids.ok()) return Fail(rids.status());
  std::printf("appended %zu records (rids %llu..%llu) in %.2fs\n",
              rids->size(),
              static_cast<unsigned long long>(rids->front()),
              static_cast<unsigned long long>(rids->back()),
              sw.ElapsedSeconds());
  return 0;
}

// Explicit recovery pass over an index directory: loads the newest valid
// manifest, garbage-collects everything it does not reference, and prints
// what was found. Opening the index (any query command) performs the same
// recovery implicitly; this subcommand exists to run it eagerly after a
// crash and to inspect the result.
int CmdRecover(const Flags& flags) {
  const std::string index_dir = flags.Get("index");
  if (index_dir.empty()) return Fail(Status::InvalidArgument("--index is required"));
  RecoveryStats rs;
  auto manifest = LoadNewestManifest(index_dir, &rs);
  if (!manifest.ok()) {
    if (manifest.status().code() == StatusCode::kNotFound) {
      std::printf("no manifest found (pre-manifest index or empty dir); "
                  "nothing to recover\n");
      return 0;
    }
    return Fail(manifest.status());
  }
  Status st = GarbageCollectUnreferenced(index_dir, *manifest, &rs);
  if (!st.ok()) return Fail(st);
  uint64_t records = 0;
  for (const auto& p : manifest->partitions) records += p.base_records;
  std::printf("recovered generation %llu (%zu partitions)\n",
              static_cast<unsigned long long>(manifest->generation),
              manifest->partitions.size());
  std::printf("  manifests scanned   %llu (invalid skipped: %llu)\n",
              static_cast<unsigned long long>(rs.manifests_scanned),
              static_cast<unsigned long long>(rs.manifests_invalid));
  std::printf("  delta files         %llu\n",
              static_cast<unsigned long long>(rs.deltas_referenced));
  std::printf("  orphans removed     %llu\n",
              static_cast<unsigned long long>(rs.orphans_removed));
  // Prove the recovered state opens cleanly (replays deltas, restores
  // sidecars) before declaring success.
  auto cluster = std::make_shared<Cluster>();
  auto index = TardisIndex::Open(cluster, index_dir);
  if (!index.ok()) return Fail(index.status());
  uint64_t total = 0;
  for (uint64_t c : index->partition_counts()) total += c;
  std::printf("  open ok: generation %llu, %llu records\n",
              static_cast<unsigned long long>(index->generation()),
              static_cast<unsigned long long>(total));
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tardis <gen|build|stats|exact|knn|range|append|recover> "
               "[--flag value ...]\n"
               "see the header of tools/tardis_cli.cc for details\n");
  return 2;
}

int Dispatch(const std::string& cmd, const Flags& flags) {
  if (cmd == "gen") return CmdGen(flags);
  if (cmd == "build") return CmdBuild(flags);
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "exact") return CmdExact(flags);
  if (cmd == "knn") return CmdKnn(flags);
  if (cmd == "range") return CmdRange(flags);
  if (cmd == "append") return CmdAppend(flags);
  if (cmd == "recover") return CmdRecover(flags);
  return Usage();
}

int Main(int argc, char** argv) {
  // `tardis ... | head` must surface as EPIPE on stdout writes, not kill the
  // process mid-command with SIGPIPE (same discipline as tardis_serve).
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return Usage();
  const Flags flags(argc, argv, 2);
  if (!flags.ok()) return 2;
  const std::string metrics_path = flags.Get("metrics-json");
  const std::string trace_path = flags.Get("trace-json");
  if (!metrics_path.empty()) telemetry::SetEnabled(true);
  if (!trace_path.empty()) telemetry::SetTraceEnabled(true);

  const int rc = Dispatch(argv[1], flags);

  // Dump on every exit path — a failed run's partial metrics are exactly
  // what you want when diagnosing it.
  if (!metrics_path.empty()) {
    Status st = telemetry::Registry::Global().DumpJsonToFile(metrics_path);
    if (!st.ok()) {
      std::fprintf(stderr, "warning: %s\n", st.ToString().c_str());
    }
  }
  if (!trace_path.empty()) {
    Status st = telemetry::Registry::Global().DumpTraceJsonToFile(trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "warning: %s\n", st.ToString().c_str());
    }
  }
  return rc;
}

}  // namespace
}  // namespace tardis

int main(int argc, char** argv) { return tardis::Main(argc, argv); }

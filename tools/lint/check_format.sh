#!/usr/bin/env bash
# Diff-scoped clang-format check: only lines touched relative to the merge
# base must be formatted, so the gate never forces whole-file churn.
#
# Usage: tools/lint/check_format.sh [<base-ref>]   (default: origin/main,
# falling back to HEAD~1 when the ref does not exist, e.g. shallow CI
# checkouts of the first commit).
set -euo pipefail

BASE="${1:-origin/main}"
if ! git rev-parse --verify --quiet "$BASE" >/dev/null; then
  BASE="HEAD~1"
fi
if ! git rev-parse --verify --quiet "$BASE" >/dev/null; then
  echo "check_format: no base ref; skipping" >&2
  exit 0
fi

CFD="$(command -v clang-format-diff || command -v clang-format-diff-18 || \
       command -v clang-format-diff-17 || command -v clang-format-diff.py || true)"
if [[ -z "$CFD" ]]; then
  echo "check_format: clang-format-diff not found; skipping" >&2
  exit 0
fi

OUT="$(git diff -U0 --no-color "$BASE" -- '*.cc' '*.h' | "$CFD" -p1 -iregex '.*\.(cc|h)')" || true
if [[ -n "$OUT" ]]; then
  echo "check_format: the following changed lines are not clang-formatted:" >&2
  echo "$OUT"
  echo "Run: git diff -U0 $BASE -- '*.cc' '*.h' | $CFD -p1 -i" >&2
  exit 1
fi
echo "check_format: OK"

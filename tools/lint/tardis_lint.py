#!/usr/bin/env python3
"""TARDIS-specific lint rules that clang-tidy cannot express.

Usage:
    python3 tools/lint/tardis_lint.py [--root REPO_ROOT]

Scans the C++ sources under src/ (and headers under fuzz/) and enforces:

  raw-mutex      No raw std::mutex / std::condition_variable /
                 std::lock_guard / std::unique_lock / std::scoped_lock /
                 std::shared_mutex outside src/common/thread_annotations.h.
                 Use tardis::Mutex / MutexLock / CondVar so Clang Thread
                 Safety Analysis sees every lock (DESIGN.md §11).

  unguarded-mutex-member
                 Every `Mutex`-typed *member* declared in a header must be
                 referenced by a TARDIS_GUARDED_BY / TARDIS_PT_GUARDED_BY /
                 TARDIS_REQUIRES / TARDIS_ACQUIRED_* annotation somewhere in
                 the same file — a mutex that guards nothing is either dead
                 or (worse) guarding members the analysis cannot check.

  direct-write   No direct file-writing primitives (std::ofstream in write
                 mode, std::fopen "w"/"a", open() with O_WRONLY/O_CREAT)
                 outside the storage layer's temp+rename/CRC-frame
                 discipline (src/storage/partition_store.cc,
                 src/storage/block_store.cc, src/common/file_util.cc).
                 Everything else must go through WriteFileAtomic so a crash
                 mid-write can never leave a torn file behind.

  void-discard   A statement-position `(void)expr;` cast (the escape hatch
                 for [[nodiscard]] Status values) must carry a comment on
                 the same line or the line above justifying why dropping
                 the value is correct.

Suppression: append `// tardis-lint: allow(<rule>) <reason>` to the
offending line (or the line above it). The reason is mandatory — a bare
allow() is itself an error.
"""

import argparse
import re
import sys
from pathlib import Path

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|condition_variable|lock_guard|unique_lock|scoped_lock|"
    r"shared_mutex|shared_lock|recursive_mutex)\b")
# A Mutex member declaration: optional `mutable`, the type, an identifier
# that looks like a member (trailing underscore or inside a struct), `;` or
# `=`-init. Kept deliberately loose; false negatives are acceptable, false
# positives get an allow().
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:tardis::)?Mutex\s+(\w+)\s*(?:;|=|\{)")
ANNOTATION_USE_RE = re.compile(
    r"TARDIS_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|"
    r"ACQUIRE|RELEASE|ACQUIRED_BEFORE|ACQUIRED_AFTER|EXCLUDES)\s*\(")
DIRECT_WRITE_RES = [
    re.compile(r"std::ofstream\b"),
    re.compile(r"\bofstream\s+\w+\("),
    re.compile(r"std::fopen\s*\([^)]*,\s*\"[wa]b?\""),
    re.compile(r"\bfopen\s*\([^)]*,\s*\"[wa]b?\""),
    re.compile(r"\bopen\s*\([^)]*O_WRONLY"),
    re.compile(r"\bopen\s*\([^)]*O_CREAT"),
    re.compile(r"\bfwrite\s*\("),
]
VOID_DISCARD_RE = re.compile(r"^\s*\(void\)\s*\w")
ALLOW_RE = re.compile(r"tardis-lint:\s*allow\((?P<rule>[\w,-]+)\)\s*(?P<reason>.*)")

# Files owning the temp+rename/CRC-frame write discipline.
DIRECT_WRITE_ALLOWLIST = {
    "src/storage/partition_store.cc",
    "src/storage/block_store.cc",
    "src/common/file_util.cc",
}
# The wrapper header itself defines the annotated types over the std ones.
RAW_MUTEX_ALLOWLIST = {"src/common/thread_annotations.h"}


def allowed(lines, idx, rule):
    """True if line idx (0-based) or the line above carries an allow(rule).

    Returns (allowed, error) where error is set for a reasonless allow().
    """
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = ALLOW_RE.search(lines[probe])
        if m and rule in m.group("rule").split(","):
            if not m.group("reason").strip():
                return True, "allow() without a reason"
            return True, None
    return False, None


def lint_file(path: Path, rel: str, findings: list):
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        findings.append((rel, 0, "io", f"cannot read: {e}"))
        return
    lines = text.split("\n")
    file_has_annotation = ANNOTATION_USE_RE.search(text) is not None

    for i, line in enumerate(lines):
        code = line.split("//", 1)[0]  # ignore matches inside comments

        if rel not in RAW_MUTEX_ALLOWLIST:
            m = RAW_MUTEX_RE.search(code)
            if m:
                ok, err = allowed(lines, i, "raw-mutex")
                if err:
                    findings.append((rel, i + 1, "raw-mutex", err))
                elif not ok:
                    findings.append(
                        (rel, i + 1, "raw-mutex",
                         f"raw std::{m.group(1)}; use tardis::Mutex/MutexLock/"
                         "CondVar from common/thread_annotations.h"))

        if rel.endswith(".h") and rel not in RAW_MUTEX_ALLOWLIST:
            m = MUTEX_MEMBER_RE.match(code)
            if m and not file_has_annotation:
                ok, err = allowed(lines, i, "unguarded-mutex-member")
                if err:
                    findings.append((rel, i + 1, "unguarded-mutex-member", err))
                elif not ok:
                    findings.append(
                        (rel, i + 1, "unguarded-mutex-member",
                         f"Mutex member '{m.group(1)}' but no TARDIS_GUARDED_BY/"
                         "REQUIRES annotation anywhere in this header"))

        if rel not in DIRECT_WRITE_ALLOWLIST:
            for wre in DIRECT_WRITE_RES:
                if wre.search(code):
                    ok, err = allowed(lines, i, "direct-write")
                    if err:
                        findings.append((rel, i + 1, "direct-write", err))
                    elif not ok:
                        findings.append(
                            (rel, i + 1, "direct-write",
                             "direct file write outside the storage layer; "
                             "use WriteFileAtomic (common/file_util.h)"))
                    break

        if VOID_DISCARD_RE.match(code):
            has_comment = "//" in line or (i > 0 and lines[i - 1].strip().startswith("//"))
            if not has_comment:
                ok, err = allowed(lines, i, "void-discard")
                if err:
                    findings.append((rel, i + 1, "void-discard", err))
                elif not ok:
                    findings.append(
                        (rel, i + 1, "void-discard",
                         "(void) discard of a value without a justifying "
                         "comment on this line or the line above"))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None, help="repo root (default: auto)")
    args = ap.parse_args()

    root = Path(args.root) if args.root else Path(__file__).resolve().parents[2]
    scan_dirs = [root / "src", root / "fuzz"]
    findings = []
    n_files = 0
    for d in scan_dirs:
        if not d.is_dir():
            continue
        for path in sorted(d.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            n_files += 1
            lint_file(path, str(path.relative_to(root)), findings)

    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"\ntardis_lint: {len(findings)} finding(s) in {n_files} files",
              file=sys.stderr)
        return 1
    print(f"tardis_lint: OK ({n_files} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

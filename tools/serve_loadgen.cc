// serve_loadgen — open-loop load generator for tardis_serve.
//
//   serve_loadgen --port P --data DIR [--count N | --query-file F]
//                 [--qps Q] [--duration-s S] [--connections C]
//                 [--op knn|exact|range] [--k K] [--strategy target|one|multi]
//                 [--radius R] [--no-bloom 1] [--out BENCH_serve.json]
//                 [--verify 1 --index DIR]
//
// Traffic is open-loop at the target QPS: request i is *scheduled* at
// start + i/qps and its latency is measured from that scheduled instant to
// response receipt, so server-side queueing delay is charged to the server
// (no coordinated omission). Requests round-robin across C connections and
// pipeline freely on each; responses are matched by request_id.
//
// Queries are records from the data directory (--count N uses rids
// [0, N), --query-file takes one rid per line), cycled for the run's
// duration. The p50/p99/p999 summary goes to stdout and, with --out, to a
// BENCH_serve.json ({"pass": true, "failed": 0, ...}) consumed by the CI
// serve-smoke job.
//
// --verify 1 --index DIR additionally replays the same queries through an
// in-process QueryEngine with identical parameters and requires every
// response to match bit-for-bit ("verify_match"); any mismatch fails the
// run. This is the end-to-end proof that the network path answers exactly
// what the engine answers.

#include <csignal>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/file_util.h"
#include "core/query_engine.h"
#include "core/tardis_index.h"
#include "net/client.h"
#include "storage/block_store.h"

namespace tardis {
namespace {

using Clock = std::chrono::steady_clock;

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        ok_ = false;
        return;
      }
      key = key.substr(2);
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", key.c_str());
        ok_ = false;
        return;
      }
      values_[key] = argv[++i];
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Loads the series for `rids`, reading each data block once (the same
// routine tardis_cli batch mode uses).
Result<std::vector<TimeSeries>> LoadQueries(const std::string& data,
                                            const std::vector<RecordId>& rids) {
  TARDIS_ASSIGN_OR_RETURN(BlockStore store, BlockStore::Open(data));
  std::vector<TimeSeries> queries(rids.size());
  std::map<uint32_t, std::vector<size_t>> by_block;
  for (size_t i = 0; i < rids.size(); ++i) {
    if (rids[i] >= store.num_records()) {
      return Status::OutOfRange("rid beyond dataset");
    }
    by_block[static_cast<uint32_t>(rids[i] / store.block_capacity())]
        .push_back(i);
  }
  for (const auto& [block, idxs] : by_block) {
    TARDIS_ASSIGN_OR_RETURN(std::vector<Record> records,
                            store.ReadBlock(block));
    for (size_t i : idxs) {
      bool found = false;
      for (auto& rec : records) {
        if (rec.rid == rids[i]) {
          queries[i] = rec.values;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotFound("record not in its block (corrupt store?)");
      }
    }
  }
  return queries;
}

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  return samples[lo] + (samples[hi] - samples[lo]) * (pos - lo);
}

struct WorkerTally {
  std::vector<double> lat_ms;
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t invalid = 0;
  uint64_t errors = 0;
  uint64_t io_errors = 0;
};

struct RunPlan {
  net::ServeRequest prototype;  // op + parameters; per-id query filled in
  const std::vector<TimeSeries>* queries = nullptr;
  uint64_t total = 0;
  Clock::time_point start;
  double interval_s = 0.0;  // 1/qps
};

// Sentinel ids flush the receiver after the sender finished: a ping response
// re-checks the exit condition without counting toward the tally.
constexpr uint64_t kFlushId = ~0ull;

// One connection: a paced sender thread and a blocking receiver (the worker
// thread itself) sharing the full-duplex socket. `responses` (when non-null)
// is a per-id slot array; each worker only writes the slots of its own ids,
// so no synchronisation is needed there. The sent counter is atomic because
// the receiver reads it while the sender still increments it.
void RunWorker(uint16_t port, const RunPlan& plan, uint32_t worker,
               uint32_t stride, WorkerTally* tally,
               std::vector<net::ServeResponse>* responses) {
  auto client_r = net::ServeClient::Connect(port);
  if (!client_r.ok()) {
    ++tally->io_errors;
    return;
  }
  net::ServeClient client = std::move(client_r).value();

  std::atomic<uint64_t> sent{0};
  std::atomic<bool> send_failed{false};
  std::thread sender([&] {
    for (uint64_t id = worker; id < plan.total; id += stride) {
      const auto due = plan.start + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(
                                            plan.interval_s *
                                            static_cast<double>(id)));
      std::this_thread::sleep_until(due);
      net::ServeRequest req = plan.prototype;
      req.request_id = id;
      req.query = (*plan.queries)[id % plan.queries->size()];
      if (!client.Send(req).ok()) {
        send_failed.store(true);
        return;  // server gone; the receiver unblocks through EOF
      }
      sent.fetch_add(1);
    }
    // Flush: a trailing ping whose response tells the receiver that sending
    // is complete, so it can stop once every real response has arrived. A
    // failed flush means the connection is dead and the receiver unblocks
    // through EOF instead, so this send is best-effort.
    net::ServeRequest flush;
    flush.request_id = kFlushId;
    flush.op = net::ServeOp::kPing;
    (void)client.Send(flush);  // tardis-lint: allow(void-discard) see above
  });

  // The flush ping is answered inline by the server's reader thread while
  // query responses come from the dispatcher, so the flush response can
  // overtake real responses — keep draining until the count catches up.
  uint64_t received = 0;
  bool flush_seen = false;
  while (!(flush_seen && received >= sent.load())) {
    Result<net::ServeResponse> resp = client.Receive();
    if (!resp.ok()) {
      ++tally->io_errors;
      break;
    }
    if (resp->request_id == kFlushId) {
      flush_seen = true;
      continue;
    }
    ++received;
    switch (resp->status) {
      case net::ServeStatus::kOk: {
        ++tally->ok;
        const auto now = Clock::now();
        const auto due =
            plan.start + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 plan.interval_s *
                                 static_cast<double>(resp->request_id)));
        tally->lat_ms.push_back(
            std::chrono::duration<double, std::milli>(now - due).count());
        break;
      }
      case net::ServeStatus::kOverloaded:
        ++tally->overloaded;
        break;
      case net::ServeStatus::kInvalidRequest:
        ++tally->invalid;
        break;
      case net::ServeStatus::kError:
        ++tally->errors;
        break;
    }
    if (responses != nullptr && resp->request_id < responses->size()) {
      (*responses)[resp->request_id] = std::move(resp).value();
    }
  }
  sender.join();
  tally->sent = sent.load();
  if (send_failed.load()) ++tally->io_errors;
}

// Replays the run's queries through an in-process QueryEngine and demands
// bit-identical answers from every kOk response.
Result<bool> VerifyAgainstEngine(const Flags& flags, const RunPlan& plan,
                                 const std::vector<net::ServeResponse>& got) {
  const std::string index_dir = flags.Get("index");
  if (index_dir.empty()) {
    return Status::InvalidArgument("--verify needs --index");
  }
  auto cluster = std::make_shared<Cluster>();
  TARDIS_ASSIGN_OR_RETURN(TardisIndex index,
                          TardisIndex::Open(cluster, index_dir));
  QueryEngine engine(index);
  QueryEngineStats stats;
  const std::vector<TimeSeries>& queries = *plan.queries;

  std::vector<std::vector<Neighbor>> neighbors;
  std::vector<std::vector<RecordId>> matches;
  switch (plan.prototype.op) {
    case net::ServeOp::kKnn: {
      TARDIS_ASSIGN_OR_RETURN(
          neighbors,
          engine.KnnApproximateBatch(queries, plan.prototype.k,
                                     plan.prototype.strategy, &stats));
      break;
    }
    case net::ServeOp::kExact: {
      TARDIS_ASSIGN_OR_RETURN(
          matches,
          engine.ExactMatchBatch(queries, plan.prototype.use_bloom, &stats));
      break;
    }
    case net::ServeOp::kRange: {
      TARDIS_ASSIGN_OR_RETURN(
          neighbors,
          engine.RangeSearchBatch(queries, plan.prototype.radius, &stats));
      break;
    }
    case net::ServeOp::kPing:
      return Status::InvalidArgument("--verify needs a query op");
  }

  uint64_t compared = 0;
  for (uint64_t id = 0; id < got.size(); ++id) {
    const net::ServeResponse& resp = got[id];
    if (resp.status != net::ServeStatus::kOk) continue;
    const size_t q = id % queries.size();
    const bool match = plan.prototype.op == net::ServeOp::kExact
                           ? resp.matches == matches[q]
                           : resp.neighbors == neighbors[q];
    if (!match) {
      std::fprintf(stderr,
                   "verify MISMATCH: request %" PRIu64 " (query %zu) differs "
                   "from the in-process engine\n",
                   id, q);
      return false;
    }
    ++compared;
  }
  std::printf("verify: %" PRIu64 " response(s) bit-identical to the "
              "in-process engine (epoch %" PRIu64 ")\n",
              compared, stats.epoch_generation);
  return compared > 0;
}

int Main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  const Flags flags(argc, argv, 1);
  if (!flags.ok()) return 2;
  const uint16_t port = static_cast<uint16_t>(flags.GetU64("port", 0));
  const std::string data = flags.Get("data");
  if (port == 0 || data.empty()) {
    std::fprintf(stderr,
                 "usage: serve_loadgen --port P --data DIR [--count N] "
                 "[--qps Q] [--duration-s S] [--connections C] "
                 "[--op knn|exact|range] [--out FILE] "
                 "[--verify 1 --index DIR]\n");
    return 2;
  }

  std::vector<RecordId> rids;
  const std::string query_file = flags.Get("query-file");
  if (!query_file.empty()) {
    std::ifstream in(query_file);
    if (!in) {
      return Fail(Status::NotFound("cannot open query file: " + query_file));
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) rids.push_back(std::strtoull(line.c_str(), nullptr, 10));
    }
  } else {
    const uint64_t n = flags.GetU64("count", 100);
    for (uint64_t i = 0; i < n; ++i) rids.push_back(i);
  }
  if (rids.empty()) return Fail(Status::InvalidArgument("no query rids"));
  auto queries = LoadQueries(data, rids);
  if (!queries.ok()) return Fail(queries.status());

  RunPlan plan;
  plan.queries = &*queries;
  const std::string op = flags.Get("op", "knn");
  if (op == "knn") {
    plan.prototype.op = net::ServeOp::kKnn;
    plan.prototype.k = static_cast<uint32_t>(flags.GetU64("k", 10));
    const std::string strategy = flags.Get("strategy", "multi");
    if (strategy == "target") {
      plan.prototype.strategy = KnnStrategy::kTargetNode;
    } else if (strategy == "one") {
      plan.prototype.strategy = KnnStrategy::kOnePartition;
    } else if (strategy == "multi") {
      plan.prototype.strategy = KnnStrategy::kMultiPartitions;
    } else {
      return Fail(Status::InvalidArgument("unknown strategy: " + strategy));
    }
  } else if (op == "exact") {
    plan.prototype.op = net::ServeOp::kExact;
    plan.prototype.use_bloom = !flags.Has("no-bloom");
  } else if (op == "range") {
    plan.prototype.op = net::ServeOp::kRange;
    plan.prototype.radius = flags.GetDouble("radius", 1.0);
  } else {
    return Fail(Status::InvalidArgument("unknown op: " + op));
  }

  const double qps = flags.GetDouble("qps", 100.0);
  const double duration_s = flags.GetDouble("duration-s", 5.0);
  const uint32_t connections =
      static_cast<uint32_t>(flags.GetU64("connections", 4));
  if (qps <= 0 || duration_s <= 0 || connections == 0) {
    return Fail(Status::InvalidArgument("qps, duration-s, connections must "
                                        "be positive"));
  }
  plan.total = static_cast<uint64_t>(qps * duration_s);
  if (plan.total == 0) plan.total = 1;
  plan.interval_s = 1.0 / qps;

  const bool verify = flags.GetU64("verify", 0) != 0;
  std::vector<net::ServeResponse> responses;
  if (verify) {
    responses.resize(plan.total);
    // Unanswered slots must not read as default-constructed kOk responses —
    // the verifier only compares slots a real kOk response landed in.
    for (auto& r : responses) r.status = net::ServeStatus::kError;
  }

  // Connectivity check before the clock starts: one ping per run.
  {
    auto probe = net::ServeClient::Connect(port);
    if (!probe.ok()) return Fail(probe.status());
    net::ServeRequest ping;
    ping.op = net::ServeOp::kPing;
    auto pong = probe->Call(ping);
    if (!pong.ok()) return Fail(pong.status());
    std::printf("connected: server at epoch %" PRIu64 "\n",
                pong->epoch_generation);
  }

  std::vector<WorkerTally> tallies(connections);
  std::vector<std::thread> workers;
  plan.start = Clock::now();
  for (uint32_t w = 0; w < connections; ++w) {
    workers.emplace_back(RunWorker, port, std::cref(plan), w, connections,
                         &tallies[w], verify ? &responses : nullptr);
  }
  for (auto& t : workers) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - plan.start).count();

  WorkerTally sum;
  std::vector<double> lat_ms;
  for (const WorkerTally& t : tallies) {
    sum.sent += t.sent;
    sum.ok += t.ok;
    sum.overloaded += t.overloaded;
    sum.invalid += t.invalid;
    sum.errors += t.errors;
    sum.io_errors += t.io_errors;
    lat_ms.insert(lat_ms.end(), t.lat_ms.begin(), t.lat_ms.end());
  }
  const double p50 = Percentile(lat_ms, 0.50);
  const double p99 = Percentile(lat_ms, 0.99);
  const double p999 = Percentile(lat_ms, 0.999);
  const uint64_t failed =
      sum.invalid + sum.errors + sum.io_errors + (plan.total - sum.sent);
  const double qps_achieved = elapsed_s > 0 ? sum.ok / elapsed_s : 0.0;

  std::printf("sent %" PRIu64 "/%" PRIu64 " (%s @ %.1f qps target, %u conns, "
              "%.2fs): ok %" PRIu64 ", overloaded %" PRIu64 ", failed %" PRIu64
              "\n",
              sum.sent, plan.total, op.c_str(), qps, connections, elapsed_s,
              sum.ok, sum.overloaded, failed);
  std::printf("latency ms (open-loop, from scheduled send): p50 %.3f  "
              "p99 %.3f  p999 %.3f\n",
              p50, p99, p999);

  bool verify_match = true;
  if (verify) {
    auto m = VerifyAgainstEngine(flags, plan, responses);
    if (!m.ok()) return Fail(m.status());
    verify_match = m.value();
  }

  const bool pass = failed == 0 && (!verify || verify_match);
  const std::string out = flags.Get("out");
  if (!out.empty()) {
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"serve\",\n"
        "  \"op\": \"%s\",\n"
        "  \"qps_target\": %.1f,\n"
        "  \"qps_achieved\": %.1f,\n"
        "  \"duration_s\": %.2f,\n"
        "  \"connections\": %u,\n"
        "  \"requests\": %" PRIu64 ",\n"
        "  \"ok\": %" PRIu64 ",\n"
        "  \"overloaded\": %" PRIu64 ",\n"
        "  \"failed\": %" PRIu64 ",\n"
        "  \"p50_ms\": %.3f,\n"
        "  \"p99_ms\": %.3f,\n"
        "  \"p999_ms\": %.3f,\n"
        "  \"verify\": %s,\n"
        "  \"verify_match\": %s,\n"
        "  \"pass\": %s\n"
        "}\n",
        op.c_str(), qps, qps_achieved, elapsed_s, connections, plan.total,
        sum.ok, sum.overloaded, failed, p50, p99, p999,
        verify ? "true" : "false", verify_match ? "true" : "false",
        pass ? "true" : "false");
    Status st = WriteFileAtomic(out, buf);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %s\n", out.c_str());
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace tardis

int main(int argc, char** argv) { return tardis::Main(argc, argv); }

// tardis_serve — the network query frontend (DESIGN.md §13).
//
// Serves an existing index over a localhost TCP socket speaking the framed
// binary protocol in src/net/wire_format.h + serve_protocol.h. Pipelined
// requests from all connections coalesce into batched QueryEngine calls
// (one partition load per distinct partition per batch), admission control
// sheds overload with a retryable status, and every response reports the
// epoch snapshot it was answered from.
//
//   tardis_serve --index DIR [--port P] [--max-inflight N] [--queue-depth N]
//                [--max-batch N] [--max-connections N] [--cache-mb MB]
//                [--metrics-json PATH] [--trace-json PATH]
//
// --port 0 (the default) binds an ephemeral port; the server prints
//   tardis_serve listening on 127.0.0.1:<port>
// on stdout so scripts (tests/cli/serve_smoke_test.sh) can parse it. The
// process runs until SIGINT/SIGTERM, then drains admitted requests and
// exits 0. See docs/TUNING.md for the knobs.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "common/telemetry.h"
#include "core/tardis_index.h"
#include "net/server.h"

namespace tardis {
namespace {

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        ok_ = false;
        return;
      }
      key = key.substr(2);
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", key.c_str());
        ok_ = false;
        return;
      }
      values_[key] = argv[++i];
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Main(int argc, char** argv) {
  // A client that disconnects mid-response must surface as EPIPE on the
  // write path (handled as clean teardown), never kill the server.
  std::signal(SIGPIPE, SIG_IGN);
  // Routed to sigwait below; block before spawning server threads so they
  // inherit the mask and termination is always handled here.
  sigset_t term_set;
  sigemptyset(&term_set);
  sigaddset(&term_set, SIGINT);
  sigaddset(&term_set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &term_set, nullptr);

  const Flags flags(argc, argv, 1);
  if (!flags.ok()) return 2;
  const std::string index_dir = flags.Get("index");
  if (index_dir.empty()) {
    std::fprintf(stderr,
                 "usage: tardis_serve --index DIR [--port P] "
                 "[--max-inflight N] [--queue-depth N] [--max-batch N] "
                 "[--max-connections N] [--cache-mb MB]\n");
    return 2;
  }
  const std::string metrics_path = flags.Get("metrics-json");
  const std::string trace_path = flags.Get("trace-json");
  if (!metrics_path.empty()) telemetry::SetEnabled(true);
  if (!trace_path.empty()) telemetry::SetTraceEnabled(true);

  auto cluster = std::make_shared<Cluster>();
  auto index = TardisIndex::Open(cluster, index_dir);
  if (!index.ok()) return Fail(index.status());
  if (flags.Has("cache-mb")) {
    index->SetCacheBudget(flags.GetU64("cache-mb", 0) << 20);
  }

  net::ServeOptions opts;
  opts.port = static_cast<uint16_t>(flags.GetU64("port", 0));
  opts.max_inflight =
      static_cast<uint32_t>(flags.GetU64("max-inflight", opts.max_inflight));
  opts.queue_depth =
      static_cast<uint32_t>(flags.GetU64("queue-depth", opts.queue_depth));
  opts.max_batch =
      static_cast<uint32_t>(flags.GetU64("max-batch", opts.max_batch));
  opts.max_connections = static_cast<uint32_t>(
      flags.GetU64("max-connections", opts.max_connections));

  net::TardisServer server(*index, opts);
  Status st = server.Start();
  if (!st.ok()) return Fail(st);
  std::printf("tardis_serve listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::printf("  index %s: generation %llu, %u partitions\n",
              index_dir.c_str(),
              static_cast<unsigned long long>(index->generation()),
              index->num_partitions());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&term_set, &sig);
  std::printf("tardis_serve: received %s, draining\n", strsignal(sig));
  std::fflush(stdout);
  server.Shutdown();

  if (!metrics_path.empty()) {
    st = telemetry::Registry::Global().DumpJsonToFile(metrics_path);
    if (!st.ok()) std::fprintf(stderr, "warning: %s\n", st.ToString().c_str());
  }
  if (!trace_path.empty()) {
    st = telemetry::Registry::Global().DumpTraceJsonToFile(trace_path);
    if (!st.ok()) std::fprintf(stderr, "warning: %s\n", st.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tardis

int main(int argc, char** argv) { return tardis::Main(argc, argv); }

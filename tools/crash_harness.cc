// crash_harness — deterministic build/append/recover driver for the
// crash-consistency suite (docs/RELIABILITY.md "Durability & recovery").
//
// Subcommands (all take the harness directory as the first operand):
//   crash_harness build <dir> [workers]    create the block store and index
//   crash_harness append <dir> [workers]   open the index, append one batch
//   crash_harness recover <dir> [workers]  recover, GC, print a content digest
//
// Every input is pinned (dataset kind, sizes, seeds, index knobs), so two
// directories that went through the same sequence of surviving operations
// are bit-identical and `recover` prints the same digest for both. The
// driver script (tests/cli/crash_recovery_test.sh) uses that to assert the
// crash-consistency contract: it computes oracle digests for the pre-append
// and post-append states, then re-runs `append` under every
// TARDIS_CRASH_POINT value until one survives, recovering after each crash
// and requiring the digest to equal one oracle or the other — never a
// hybrid.
//
// The digest covers everything a query can observe: the committed
// generation, per-partition record counts, every record's rid and raw value
// bytes (base file + replayed deltas, in scan order), and the results of a
// fixed probe workload (exact match with Bloom, exact kNN, range search) so
// the generation-suffixed sidecars participate too.
//
// `recover` also performs the recovery sweep explicitly before opening the
// index (LoadNewestManifest + GarbageCollectUnreferenced) to report what it
// found, then runs a second sweep after Open and prints orphans_after_gc —
// which the driver requires to be 0 (GC is idempotent; recovery converges
// in one pass).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/tardis_index.h"
#include "storage/block_store.h"
#include "storage/manifest.h"
#include "workload/datasets.h"

namespace tardis {
namespace {

// Pinned workload parameters. Changing any of these invalidates recorded
// digests, which is fine — the driver recomputes its oracles every run.
constexpr uint64_t kBaseCount = 3000;
constexpr uint64_t kAppendCount = 200;
constexpr uint32_t kSeriesLength = 64;
constexpr uint64_t kBaseSeed = 101;
constexpr uint64_t kAppendSeed = 103;
constexpr uint64_t kBlockCapacity = 250;

std::string PartsDir(const std::string& dir) { return dir + "/parts"; }

TardisConfig HarnessConfig() {
  TardisConfig config;
  config.g_max_size = 500;
  config.l_max_size = 100;
  return config;
}

// FNV-1a 64-bit, the repo's stock content fingerprint for test oracles.
class Digest {
 public:
  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      state_ ^= p[i];
      state_ *= 0x100000001b3ull;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F32(float v) { Bytes(&v, sizeof(v)); }
  uint64_t value() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ull;
};

int Fail(const Status& st) {
  std::fprintf(stderr, "crash_harness: %s\n", st.ToString().c_str());
  return 1;
}

int CmdBuild(const std::string& dir, uint32_t workers) {
  auto dataset =
      MakeDataset(DatasetKind::kRandomWalk, kBaseCount, kSeriesLength,
                  kBaseSeed);
  if (!dataset.ok()) return Fail(dataset.status());
  auto store = BlockStore::Create(dir + "/bs", *dataset, kBlockCapacity);
  if (!store.ok()) return Fail(store.status());
  auto cluster = std::make_shared<Cluster>(workers);
  auto index = TardisIndex::Build(cluster, *store, PartsDir(dir),
                                  HarnessConfig(), nullptr);
  if (!index.ok()) return Fail(index.status());
  std::printf("built generation=%llu partitions=%u\n",
              static_cast<unsigned long long>(index->generation()),
              index->num_partitions());
  return 0;
}

int CmdAppend(const std::string& dir, uint32_t workers) {
  auto cluster = std::make_shared<Cluster>(workers);
  auto index = TardisIndex::Open(cluster, PartsDir(dir));
  if (!index.ok()) return Fail(index.status());
  auto batch = MakeDataset(DatasetKind::kRandomWalk, kAppendCount,
                           kSeriesLength, kAppendSeed);
  if (!batch.ok()) return Fail(batch.status());
  auto rids = index->Append(*batch);
  if (!rids.ok()) return Fail(rids.status());
  std::printf("appended %zu generation=%llu\n", rids->size(),
              static_cast<unsigned long long>(index->generation()));
  return 0;
}

// Fixed probe queries: one series from the base dataset, one from the
// append batch, plus kNN/range probes around the base series. Exercises the
// Bloom filters, region summaries, and delta-tail scan paths, so sidecar
// corruption that leaves raw records intact still moves the digest.
Status DigestProbes(const TardisIndex& index, Digest* d) {
  auto base = MakeDataset(DatasetKind::kRandomWalk, kBaseCount, kSeriesLength,
                          kBaseSeed);
  TARDIS_RETURN_NOT_OK(base.status());
  auto extra = MakeDataset(DatasetKind::kRandomWalk, kAppendCount,
                           kSeriesLength, kAppendSeed);
  TARDIS_RETURN_NOT_OK(extra.status());
  const std::vector<TimeSeries> probes = {(*base)[7], (*base)[kBaseCount / 2],
                                          (*extra)[3]};
  for (const TimeSeries& q : probes) {
    auto exact = index.ExactMatch(q, /*use_bloom=*/true, nullptr);
    TARDIS_RETURN_NOT_OK(exact.status());
    d->U64(exact->size());
    for (RecordId rid : *exact) d->U64(rid);
    auto knn = index.KnnExact(q, /*k=*/5, nullptr);
    TARDIS_RETURN_NOT_OK(knn.status());
    d->U64(knn->size());
    for (const Neighbor& n : *knn) {
      d->U64(n.rid);
      d->Bytes(&n.distance, sizeof(n.distance));
    }
    auto range = index.RangeSearch(q, /*radius=*/2.5, nullptr);
    TARDIS_RETURN_NOT_OK(range.status());
    d->U64(range->size());
    for (const Neighbor& n : *range) d->U64(n.rid);
  }
  return Status::OK();
}

int CmdRecover(const std::string& dir, uint32_t workers) {
  const std::string parts = PartsDir(dir);

  // Explicit recovery sweep first, so the crash's leftovers are visible in
  // the output (TardisIndex::Open repeats this internally and would find a
  // directory that is already clean).
  RecoveryStats rs;
  auto manifest = LoadNewestManifest(parts, &rs);
  if (manifest.ok()) {
    Status st = GarbageCollectUnreferenced(parts, *manifest, &rs);
    if (!st.ok()) return Fail(st);
  } else if (manifest.status().code() != StatusCode::kNotFound) {
    return Fail(manifest.status());
  }
  std::printf("manifests_scanned=%llu manifests_invalid=%llu "
              "orphans_removed=%llu deltas_referenced=%llu\n",
              static_cast<unsigned long long>(rs.manifests_scanned),
              static_cast<unsigned long long>(rs.manifests_invalid),
              static_cast<unsigned long long>(rs.orphans_removed),
              static_cast<unsigned long long>(rs.deltas_referenced));

  auto cluster = std::make_shared<Cluster>(workers);
  auto index = TardisIndex::Open(cluster, parts);
  if (!index.ok()) return Fail(index.status());

  // Recovery must converge in one pass: a second sweep finds nothing.
  RecoveryStats rs2;
  auto manifest2 = LoadNewestManifest(parts, &rs2);
  if (manifest2.ok()) {
    Status st = GarbageCollectUnreferenced(parts, *manifest2, &rs2);
    if (!st.ok()) return Fail(st);
  }
  std::printf("orphans_after_gc=%llu\n",
              static_cast<unsigned long long>(rs2.orphans_removed));

  Digest d;
  d.U64(index->generation());
  d.U64(index->num_partitions());
  const std::vector<uint64_t> counts = index->partition_counts();
  for (uint64_t c : counts) d.U64(c);
  for (PartitionId pid = 0; pid < index->num_partitions(); ++pid) {
    auto records = index->LoadPartition(pid);
    if (!records.ok()) return Fail(records.status());
    for (const Record& rec : *records) {
      d.U64(rec.rid);
      d.Bytes(rec.values.data(), rec.values.size() * sizeof(float));
    }
  }
  if (Status st = DigestProbes(*index, &d); !st.ok()) return Fail(st);

  std::printf("generation=%llu records=%llu digest=%016llx\n",
              static_cast<unsigned long long>(index->generation()),
              static_cast<unsigned long long>(
                  [&] {
                    uint64_t total = 0;
                    for (uint64_t c : counts) total += c;
                    return total;
                  }()),
              static_cast<unsigned long long>(d.value()));
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: crash_harness <build|append|recover> <dir> [workers]\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  const std::string dir = argv[2];
  uint32_t workers = 2;
  if (argc > 3) {
    const long v = std::strtol(argv[3], nullptr, 10);
    if (v < 1 || v > 64) return Usage();
    workers = static_cast<uint32_t>(v);
  }
  if (cmd == "build") return CmdBuild(dir, workers);
  if (cmd == "append") return CmdAppend(dir, workers);
  if (cmd == "recover") return CmdRecover(dir, workers);
  return Usage();
}

}  // namespace
}  // namespace tardis

int main(int argc, char** argv) { return tardis::Main(argc, argv); }
